//===- tests/maxflow_equivalence_test.cpp - Cross-solver equivalence -----------===//
//
// Property tests asserting that every max-flow algorithm (Edmonds-Karp,
// Dinic, push-relabel) is interchangeable: equal flow values,
// verifyMinCut-valid cuts, and — because the earliest/latest residual
// cuts are properties of the residual graph, which every maximum flow
// shares — identical cut edge lists. Exercised on three network
// families: EFGs built from the checked-in corpus, EFGs of randomized
// generated programs under real training profiles, and hand-built
// adversarial shapes (long chains, stars, saturated capacities,
// zero-capacity edges).
//
//===----------------------------------------------------------------------===//

#include "analysis/Cfg.h"
#include "analysis/DomTree.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "mincut/MinCut.h"
#include "pre/ExprKey.h"
#include "pre/Frg.h"
#include "pre/McSsaPre.h"
#include "ssa/SsaConstruction.h"
#include "workload/FuzzOracles.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#ifndef SPECPRE_CORPUS_DIR
#error "SPECPRE_CORPUS_DIR must point at tests/corpus"
#endif

using namespace specpre;

namespace {

/// The core property: every algorithm, under both placements, must
/// produce the same capacity and the same cut edge list, and every cut
/// must pass structural verification.
void expectSolversAgree(FlowNetwork &Net, int Source, int Sink,
                        const std::string &What) {
  for (CutPlacement P : {CutPlacement::Earliest, CutPlacement::Latest}) {
    const char *PName = P == CutPlacement::Earliest ? "earliest" : "latest";
    std::optional<MinCutResult> Ref;
    for (MaxFlowAlgorithm A : AllMaxFlowAlgorithms) {
      Net.resetFlow();
      MinCutResult Cut = computeMinCut(Net, Source, Sink, P, A);
      std::string Context = What + ": " + maxFlowAlgorithmName(A) + "/" +
                            PName;
      std::string Error;
      ASSERT_TRUE(verifyMinCut(Net, Source, Sink, Cut, Error))
          << Context << ": " << Error;
      if (!Ref) {
        Ref = Cut;
        continue;
      }
      EXPECT_EQ(Cut.Capacity, Ref->Capacity) << Context;
      EXPECT_EQ(Cut.CutEdgeIds, Ref->CutEdgeIds) << Context;
    }
  }
}

/// Builds the EFG network of every non-faulting candidate of \p F under
/// \p Prof and runs the agreement property on each. Returns how many
/// non-empty networks were exercised.
unsigned checkEfgNetworks(const Function &F, const Profile &Prof,
                          const std::string &What) {
  Function Ssa = F;
  if (!Ssa.IsSSA)
    constructSsa(Ssa);
  Cfg C(Ssa);
  DomTree DT = DomTree::buildDominators(C);
  unsigned Exercised = 0;
  for (const ExprKey &E : collectCandidateExprs(Ssa)) {
    if (E.canFault())
      continue;
    Frg G(Ssa, C, DT, E);
    if (G.reals().empty())
      continue;
    EfgBuild B = buildEfgNetwork(G, Prof);
    if (B.Empty)
      continue;
    ++Exercised;
    expectSolversAgree(B.Net, B.Source, B.Sink,
                       What + " expr '" + E.toString(Ssa) + "'");
  }
  return Exercised;
}

std::optional<std::string> slurp(const std::filesystem::path &P) {
  std::ifstream In(P);
  if (!In)
    return std::nullopt;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

TEST(MaxFlowEquivalence, CorpusEfgNetworks) {
  // Every corpus program that ships a stored profile yields EFG networks
  // shaped by real reproducers (capacity overflow, critical edges, ...).
  unsigned Exercised = 0;
  for (const std::filesystem::directory_entry &Entry :
       std::filesystem::directory_iterator(SPECPRE_CORPUS_DIR)) {
    if (Entry.path().extension() != ".prof")
      continue;
    std::filesystem::path IrPath = Entry.path();
    IrPath.replace_extension(".ir");
    std::optional<std::string> IrText = slurp(IrPath);
    std::optional<std::string> ProfText = slurp(Entry.path());
    ASSERT_TRUE(IrText && ProfText) << IrPath;
    std::string Error;
    std::optional<Module> M = parseModule(*IrText, Error);
    ASSERT_TRUE(M && !M->Functions.empty()) << IrPath << ": " << Error;
    Profile Prof;
    ASSERT_TRUE(parseProfile(*ProfText, Prof, Error))
        << Entry.path() << ": " << Error;
    Exercised += checkEfgNetworks(M->Functions.front(), Prof,
                                  IrPath.filename().string());
  }
  EXPECT_GT(Exercised, 0u) << "corpus produced no EFG networks";
}

TEST(MaxFlowEquivalence, GeneratedProgramEfgNetworks) {
  // Randomized programs under genuine training profiles: the networks
  // MC-SSAPRE actually solves, across many shapes.
  unsigned Exercised = 0;
  for (uint64_t Case = 0; Case != 40; ++Case) {
    Function F = fuzzProgram(/*Seed=*/11, Case);
    std::vector<int64_t> Args = fuzzTrainArgs(F, 11, Case);
    Profile Prof;
    ExecOptions EO;
    EO.CollectProfile = &Prof;
    ExecResult Train = interpret(F, Args, EO);
    if (Train.Trapped || Train.TimedOut)
      continue;
    Exercised += checkEfgNetworks(F, Prof,
                                  "generated case " + std::to_string(Case));
  }
  EXPECT_GT(Exercised, 10u) << "generator produced too few EFG networks";
}

TEST(MaxFlowEquivalence, RandomNetworkMatrixAgainstBruteForce) {
  // The full oracle (all solvers x both placements x brute-force
  // capacity x cut identity) over the fuzzer's own network generator.
  for (uint64_t Case = 0; Case != 250; ++Case) {
    std::optional<OracleFailure> F = checkRandomNetworkCase(/*Seed=*/3, Case);
    ASSERT_FALSE(F) << "network case " << Case << ": oracle '" << F->Oracle
                    << "': " << F->Message;
  }
}

TEST(MaxFlowEquivalence, LongChain) {
  // A deep chain is the adversarial shape for phase-based solvers: the
  // augmenting path length equals the chain depth. The unique bottleneck
  // sits mid-chain.
  FlowNetwork Net;
  int S = Net.addNode(), T = Net.addNode();
  const int Depth = 300;
  int Prev = S;
  for (int I = 0; I != Depth; ++I) {
    int N = Net.addNode();
    Net.addEdge(Prev, N, I == Depth / 2 ? 3 : 10, -1);
    Prev = N;
  }
  Net.addEdge(Prev, T, 10, -1);
  expectSolversAgree(Net, S, T, "long chain");
  Net.resetFlow();
  MinCutResult Cut = computeMinCut(Net, S, T, CutPlacement::Earliest,
                                   MaxFlowAlgorithm::PushRelabel);
  EXPECT_EQ(Cut.Capacity, 3);
  ASSERT_EQ(Cut.CutEdgeIds.size(), 1u);
}

TEST(MaxFlowEquivalence, StarWithMixedCapacities) {
  // A hub fanning out to many spokes, mixing ordinary, saturated
  // (MaxFiniteCapacity), zero and infinite capacities.
  FlowNetwork Net;
  int S = Net.addNode(), T = Net.addNode();
  int Hub = Net.addNode();
  Net.addEdge(S, Hub, MaxFiniteCapacity, -1);
  int64_t ExpectFlow = 0;
  for (int I = 0; I != 40; ++I) {
    int Spoke = Net.addNode();
    int64_t HubCap = I % 4 == 0 ? 0 : (I % 7 == 0 ? MaxFiniteCapacity : I);
    int64_t OutCap = I % 7 == 0 ? 5 : InfiniteCapacity;
    Net.addEdge(Hub, Spoke, HubCap, -1);
    Net.addEdge(Spoke, T, OutCap, -1);
    ExpectFlow += std::min(HubCap, OutCap);
  }
  expectSolversAgree(Net, S, T, "star");
  Net.resetFlow();
  MinCutResult Cut = computeMinCut(Net, S, T, CutPlacement::Latest,
                                   MaxFlowAlgorithm::PushRelabel);
  EXPECT_EQ(Cut.Capacity, ExpectFlow);
}

TEST(MaxFlowEquivalence, SaturatedParallelPathsStayFinite) {
  // Several MaxFiniteCapacity edges in parallel: capacities near the
  // finite ceiling must accumulate without tipping into the infinite
  // band or overflowing.
  FlowNetwork Net;
  int S = Net.addNode(), T = Net.addNode();
  for (int I = 0; I != 4; ++I) {
    int Mid = Net.addNode();
    Net.addEdge(S, Mid, MaxFiniteCapacity, -1);
    Net.addEdge(Mid, T, MaxFiniteCapacity, -1);
  }
  expectSolversAgree(Net, S, T, "saturated parallel paths");
  Net.resetFlow();
  MinCutResult Cut = computeMinCut(Net, S, T, CutPlacement::Earliest,
                                   MaxFlowAlgorithm::PushRelabel);
  EXPECT_EQ(Cut.Capacity, 4 * MaxFiniteCapacity);
  EXPECT_LT(Cut.Capacity, InfiniteCapacity);
}

TEST(MaxFlowEquivalence, ZeroCapacityEdgesAreInert) {
  // Zero-capacity edges (zero-frequency profile edges) exist in the
  // network but carry nothing; solvers must neither push through them
  // nor report them as cut members with weight.
  FlowNetwork Net;
  int S = Net.addNode(), T = Net.addNode();
  int A = Net.addNode(), B = Net.addNode();
  Net.addEdge(S, A, 7, -1);
  Net.addEdge(A, B, 0, -1);  // dead path
  Net.addEdge(B, T, 9, -1);
  Net.addEdge(A, T, 5, -1);  // the only live route
  Net.addEdge(S, B, 0, -1);  // dead source edge
  expectSolversAgree(Net, S, T, "zero-capacity edges");
  Net.resetFlow();
  MinCutResult Cut = computeMinCut(Net, S, T, CutPlacement::Earliest,
                                   MaxFlowAlgorithm::PushRelabel);
  EXPECT_EQ(Cut.Capacity, 5);
}

} // namespace
