//===- tests/evaluation_test.cpp - FDO evaluation harness tests -----------------===//

#include "workload/Evaluation.h"
#include "ir/Parser.h"
#include "workload/ProgramGenerator.h"

#include <gtest/gtest.h>

using namespace specpre;

TEST(Evaluation, SingleBenchmarkEndToEnd) {
  BenchmarkSpec Spec = cint2006Suite().front(); // perlbench
  EvaluationOptions Opts;
  BenchmarkOutcome Out = evaluateBenchmark(Spec, Opts);
  EXPECT_EQ(Out.Name, "perlbench");
  ASSERT_EQ(Out.PerStrategy.size(), 3u);
  for (auto &[S, R] : Out.PerStrategy) {
    EXPECT_GT(R.Cycles, 0u) << strategyName(S);
    EXPECT_GT(R.DynComputations, 0u) << strategyName(S);
  }
}

TEST(Evaluation, McSsaPreNeverLosesOnTrainingEqualInput) {
  // With ref == train the profile is perfect: leg C must not lose to A.
  BenchmarkSpec Spec = cfp2006Suite().front();
  Spec.RefArgs = Spec.TrainArgs;
  EvaluationOptions Opts;
  BenchmarkOutcome Out = evaluateBenchmark(Spec, Opts);
  uint64_t A = Out.PerStrategy[PreStrategy::SsaPre].DynComputations;
  uint64_t C = Out.PerStrategy[PreStrategy::McSsaPre].DynComputations;
  EXPECT_LE(C, A);
}

TEST(Evaluation, SpeedupPercentArithmetic) {
  BenchmarkOutcome Out;
  Out.PerStrategy[PreStrategy::SsaPre].Cycles = 1000;
  Out.PerStrategy[PreStrategy::McSsaPre].Cycles = 950;
  EXPECT_DOUBLE_EQ(Out.speedupPercent(PreStrategy::SsaPre,
                                      PreStrategy::McSsaPre),
                   5.0);
  // Missing strategy or zero baseline yields 0.
  EXPECT_DOUBLE_EQ(Out.speedupPercent(PreStrategy::McPre,
                                      PreStrategy::McSsaPre),
                   0.0);
}

TEST(Evaluation, CollectsEfgStatistics) {
  BenchmarkSpec Spec = cint2006Suite()[1]; // bzip2
  EvaluationOptions Opts;
  BenchmarkOutcome Out = evaluateBenchmark(Spec, Opts);
  // Some candidate expressions must have been processed.
  EXPECT_FALSE(Out.McSsaPreStats.records().empty());
  // Every non-empty EFG has at least 4 nodes (paper Section 5.2).
  for (const ExprStatsRecord &R : Out.McSsaPreStats.records()) {
    if (!R.EfgEmpty) {
      EXPECT_GE(R.EfgNodes, 4u);
    }
  }
}

TEST(IteratedPre, HarvestsSecondOrderRedundancy) {
  // (a+b)*c computed twice through distinct intermediates: round one
  // shares a+b (u2 becomes a reload of the PRE temp), the cleanup's copy
  // propagation rewires v2 onto u1 directly, and round two shares the
  // multiply. Lexical PRE alone (round one) cannot relate `u1*c` and
  // `u2*c` — they use different base variables.
  Function F = parseFunctionOrDie(R"(
    func f(a, b, c) {
    entry:
      u1 = a + b
      v1 = u1 * c
      print v1
      u2 = a + b
      v2 = u2 * c
      ret v2
    }
  )");
  prepareFunction(F);
  PreOptions PO;
  PO.Strategy = PreStrategy::McSsaPre;

  std::vector<int64_t> Train{2, 3, 4};
  Function OneRound = compileWithIteratedPre(F, PO, Train, 1);
  Function ManyRounds = compileWithIteratedPre(F, PO, Train, 4);

  ExecResult Base = interpret(F, Train);
  ExecResult R1 = interpret(OneRound, Train);
  ExecResult RN = interpret(ManyRounds, Train);
  EXPECT_TRUE(Base.sameObservableBehavior(R1));
  EXPECT_TRUE(Base.sameObservableBehavior(RN));
  EXPECT_EQ(Base.DynamicComputations, 4u);
  // Round one removes the redundant a+b; the multiply needs round two.
  EXPECT_EQ(R1.DynamicComputations, 3u);
  EXPECT_EQ(RN.DynamicComputations, 2u);
}

TEST(IteratedPre, ConvergesOnRandomPrograms) {
  for (uint64_t Seed = 900; Seed <= 910; ++Seed) {
    GeneratorConfig Cfg0;
    Function F = generateProgram(Seed, Cfg0);
    prepareFunction(F);
    std::vector<int64_t> Train(F.Params.size(), static_cast<int64_t>(Seed));
    PreOptions PO;
    PO.Strategy = PreStrategy::McSsaPre;
    Function Opt = compileWithIteratedPre(F, PO, Train, 5);
    ExecResult Base = interpret(F, Train);
    ExecResult R = interpret(Opt, Train);
    ASSERT_TRUE(Base.sameObservableBehavior(R)) << "seed " << Seed;
    ASSERT_LE(R.DynamicComputations, Base.DynamicComputations);
  }
}

TEST(EfgDistribution, FrontLoadedLikeFigure11) {
  // Regression guard for the Figure-11 headline: over a program corpus,
  // EFGs are overwhelmingly tiny (the sparse-approach claim). We assert
  // a conservative version of the paper's numbers on a smaller corpus.
  PreStats Stats;
  for (uint64_t Seed = 1; Seed <= 80; ++Seed) {
    GeneratorConfig Cfg;
    Cfg.MaxDepth = 2 + Seed % 3;
    Cfg.ExprPoolSize = 6 + Seed % 6;
    Function F = generateProgram(Seed * 131 + 7, Cfg);
    prepareFunction(F);
    Profile Prof;
    ExecOptions EO;
    EO.CollectProfile = &Prof;
    std::vector<int64_t> Args(F.Params.size(), static_cast<int64_t>(Seed));
    ExecResult Train = interpret(F, Args, EO);
    if (Train.Trapped || Train.TimedOut)
      continue;
    Profile NodeOnly = Prof.withoutEdgeFreqs();
    PreOptions PO;
    PO.Strategy = PreStrategy::McSsaPre;
    PO.Prof = &NodeOnly;
    PO.Stats = &Stats;
    PO.Verify = false;
    (void)compileWithPre(F, PO);
  }
  ASSERT_GE(Stats.numNonEmptyEfgs(), 50u);
  // The minimum possible EFG has 4 nodes, and it must be the mode.
  auto Hist = Stats.efgSizeHistogram();
  unsigned ModeSize = 0, ModeCount = 0;
  for (auto &[Size, Count] : Hist) {
    ASSERT_GE(Size, 4u);
    if (Count > ModeCount) {
      ModeCount = Count;
      ModeSize = Size;
    }
  }
  EXPECT_EQ(ModeSize, 4u);
  // Front-loaded: most EFGs are small (paper: 86.5% <= 10; we assert a
  // conservative 60% on the smaller corpus).
  EXPECT_GE(Stats.cumulativePercentAtOrBelow(10), 60.0);
  EXPECT_GE(Stats.cumulativePercentAtOrBelow(100), 99.0);
}
