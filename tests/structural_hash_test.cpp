//===- tests/structural_hash_test.cpp - Pinned IR content digests ---------------===//
//
// Audits ir/StructuralHash.h, the foundation of the compilation cache's
// content addressing (docs/CACHING.md). Two kinds of checks:
//
//  * **pinned digests** — the exact hex digests of the running-example
//    miniature (tests/running_example_test.cpp) and of its cache keys
//    are hard-coded below. Any change to the walk order, the mixer, the
//    lane seeds or the key composition fails here *by design*: such a
//    change silently invalidates every existing cache directory, and the
//    pin forces that to be a reviewed decision (bump the constants, note
//    it in docs/CACHING.md) rather than an accident.
//
//  * **sensitivity/insensitivity properties** — every single-token edit
//    of the IR must change the digest, while content-free differences
//    (dead variable-table entries left behind by the parser) must not.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "ir/StructuralHash.h"
#include "pre/CachedCompile.h"
#include "pre/PreDriver.h"
#include "profile/Profile.h"
#include "ssa/SsaConstruction.h"

#include <gtest/gtest.h>

using namespace specpre;

namespace {

/// The running-example miniature, verbatim from running_example_test.cpp
/// (the paper's 18-block example distilled to the properties it states).
/// Kept as a literal here on purpose: this file pins bytes, so its input
/// must be frozen text, not a helper another test might evolve.
const char *MiniText = R"(
  func mini(a, b, p, q, r, s2) {
  entry:
    br p, p1, p2
  p1:
    x1 = a + b
    print x1
    jmp j1
  p2:
    print 0
    jmp j1
  j1:
    br q, u, skip
  u:
    x2 = a + b
    print x2
    jmp j2
  skip:
    jmp j2
  j2:
    br r, kill, qq
  kill:
    a = a + 0
    jmp j3
  qq:
    jmp j3
  j3:
    br s2, v, w
  v:
    x3 = a + b
    print x3
    jmp out
  w:
    jmp out
  out:
    ret a
  }
)";

Function makeMini() {
  Function F = parseFunctionOrDie(MiniText);
  prepareFunction(F);
  return F;
}

Profile makeMiniProfile(const Function &F) {
  Profile Prof;
  Prof.reset(F.numBlocks(), false);
  auto Freq = [&](const std::string &Label, uint64_t N) {
    for (unsigned B = 0; B != F.numBlocks(); ++B)
      if (F.Blocks[B].Label == Label)
        Prof.BlockFreq[B] = N;
  };
  Freq("entry", 20);
  Freq("p2", 20);
  Freq("j1", 20);
  Freq("u", 10);
  Freq("skip", 10);
  Freq("j2", 20);
  Freq("qq", 20);
  Freq("j3", 20);
  Freq("v", 18);
  Freq("w", 2);
  Freq("out", 20);
  return Prof;
}

} // namespace

//===----------------------------------------------------------------------===//
// Pinned digests
//===----------------------------------------------------------------------===//

// If one of these four pins fails and the change to hashing or key
// composition was intentional, every existing --cache-dir is invalidated:
// update the constants AND mention the format break in docs/CACHING.md.
TEST(StructuralHash, PinnedRunningExampleDigests) {
  Function F = makeMini();
  EXPECT_EQ(structuralHash(F).toHex(), "5649454875a00c44c48d6da1b4f7d676");

  Function Ssa = F;
  constructSsa(Ssa);
  EXPECT_EQ(structuralHash(Ssa).toHex(), "09af3905b13193ba2b79f35918e39a4a");
}

TEST(StructuralHash, PinnedCacheKeys) {
  Function F = makeMini();
  Profile Prof = makeMiniProfile(F);
  Profile NodeOnly = Prof.withoutEdgeFreqs();

  PreOptions PO;
  PO.Strategy = PreStrategy::McSsaPre;
  PO.Prof = &NodeOnly;
  EXPECT_EQ(compileCacheKey(F, PO).toHex(), "15242fd34cac37708f280e8d3d4491e0");

  PO.Strategy = PreStrategy::McPre;
  PO.Prof = &Prof;
  EXPECT_EQ(compileCacheKey(F, PO).toHex(), "c84eb4307d7c0663ec4fa4ed9ae58b62");
}

TEST(StructuralHash, HexFormatIsHiThenLo) {
  Hash128 H;
  H.Hi = 0x0123456789abcdefULL;
  H.Lo = 0xfedcba9876543210ULL;
  EXPECT_EQ(H.toHex(), "0123456789abcdeffedcba9876543210");
  EXPECT_EQ(Hash128{}.toHex(), std::string(32, '0'));
}

//===----------------------------------------------------------------------===//
// Sensitivity / insensitivity
//===----------------------------------------------------------------------===//

TEST(StructuralHash, DeadVarTableEntriesDoNotPerturb) {
  Function F = makeMini();
  Function G = F;
  // A parser temporary that was retargeted away: present in the table,
  // referenced nowhere. The two functions print identically, so they
  // must hash identically.
  G.makeFreshVar("t$");
  G.makeFreshVar("t$");
  EXPECT_EQ(structuralHash(F), structuralHash(G));
}

TEST(StructuralHash, EverySingleTokenEditChangesTheDigest) {
  const Function Base = makeMini();
  const Hash128 H0 = structuralHash(Base);

  struct Edit {
    const char *What;
    void (*Apply)(Function &);
  };
  const Edit Edits[] = {
      {"function name", [](Function &F) { F.Name += "x"; }},
      {"SSA flag", [](Function &F) { F.IsSSA = !F.IsSSA; }},
      {"block label", [](Function &F) { F.Blocks[3].Label += "x"; }},
      {"constant operand",
       [](Function &F) {
         for (BasicBlock &BB : F.Blocks)
           for (Stmt &S : BB.Stmts)
             if (S.Kind == StmtKind::Compute && S.Src1.isConst()) {
               ++S.Src1.Value;
               return;
             }
       }},
      {"opcode",
       [](Function &F) {
         for (BasicBlock &BB : F.Blocks)
           for (Stmt &S : BB.Stmts)
             if (S.Kind == StmtKind::Compute) {
               S.Op = Opcode::Sub;
               return;
             }
       }},
      {"variable name (all uses)",
       [](Function &F) { F.VarNames[F.findVar("x1")] = "x1x"; }},
      {"branch target",
       [](Function &F) {
         Stmt &T = F.Blocks[0].terminator();
         std::swap(T.TrueTarget, T.FalseTarget);
       }},
      {"statement order",
       [](Function &F) {
         for (BasicBlock &BB : F.Blocks)
           if (BB.Stmts.size() >= 3) {
             std::swap(BB.Stmts[0], BB.Stmts[1]);
             return;
           }
       }},
      {"dropped parameter", [](Function &F) { F.Params.pop_back(); }},
  };

  for (const Edit &E : Edits) {
    Function F = Base;
    E.Apply(F);
    EXPECT_NE(structuralHash(F), H0) << "edit not detected: " << E.What;
  }
}

TEST(StructuralHash, StringHashingIsLengthPrefixed) {
  // "ab" + "c" vs "a" + "bc" must differ even though the concatenated
  // bytes are identical.
  HashBuilder A;
  A.addString("ab");
  A.addString("c");
  HashBuilder B;
  B.addString("a");
  B.addString("bc");
  EXPECT_NE(A.digest(), B.digest());
}
