//===- tests/cleanup_test.cpp - SSA cleanup pass tests ---------------------------===//

#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "opt/Cleanup.h"
#include "pre/PreDriver.h"
#include "ssa/SsaConstruction.h"
#include "workload/ProgramGenerator.h"

#include <gtest/gtest.h>

using namespace specpre;

namespace {

Function ssaOf(const char *Src) {
  Function F = parseFunctionOrDie(Src);
  prepareFunction(F);
  constructSsa(F);
  return F;
}

unsigned countKind(const Function &F, StmtKind K) {
  unsigned N = 0;
  for (const BasicBlock &BB : F.Blocks)
    for (const Stmt &S : BB.Stmts)
      N += S.Kind == K;
  return N;
}

} // namespace

TEST(ConstantFold, FoldsComputes) {
  Function F = ssaOf(R"(
    func f(a) {
    entry:
      x = 2 + 3
      y = x * a
      ret y
    }
  )");
  EXPECT_GE(foldConstants(F), 1u);
  EXPECT_EQ(F.Blocks[0].Stmts[0].Kind, StmtKind::Copy);
  EXPECT_EQ(F.Blocks[0].Stmts[0].Src0.Value, 5);
  verifyFunctionOrDie(F, "after fold");
}

TEST(ConstantFold, KeepsFaultingFold) {
  Function F = ssaOf(R"(
    func f(a) {
    entry:
      x = a + 0
      y = 1 / 0
      ret y
    }
  )");
  foldConstants(F);
  // The division by zero must survive: the trap is observable.
  EXPECT_EQ(countKind(F, StmtKind::Compute), 2u);
  EXPECT_TRUE(interpret(F, {1}).Trapped);
}

TEST(ConstantFold, ConstantBranchBecomesJump) {
  Function F = ssaOf(R"(
    func f(a) {
    entry:
      br 1, t, e
    t:
      x = a + 1
      jmp j
    e:
      x = a + 2
      jmp j
    j:
      ret x
    }
  )");
  unsigned Changed = foldConstants(F);
  EXPECT_GE(Changed, 1u);
  verifyFunctionOrDie(F, "after branch fold");
  // Only the taken path remains; e is unreachable and removed; the join
  // phi became a copy.
  EXPECT_EQ(interpret(F, {10}).ReturnValue, 11);
  EXPECT_EQ(countKind(F, StmtKind::Phi), 0u);
}

TEST(CopyPropagation, ChainsResolve) {
  Function F = ssaOf(R"(
    func f(a) {
    entry:
      x = a
      y = x
      z = y + 1
      ret z
    }
  )");
  EXPECT_GE(propagateCopies(F), 1u);
  verifyFunctionOrDie(F, "after copyprop");
  // z's operand now references `a` directly.
  const Stmt *Z = nullptr;
  for (const Stmt &S : F.Blocks[0].Stmts)
    if (S.Kind == StmtKind::Compute)
      Z = &S;
  ASSERT_NE(Z, nullptr);
  EXPECT_EQ(F.varName(Z->Src0.Var), "a");
}

TEST(CopyPropagation, ThroughPhiArguments) {
  Function F = ssaOf(R"(
    func f(a, p) {
    entry:
      x = a
      br p, t, e
    t:
      y = x
      jmp j
    e:
      y = 5
      jmp j
    j:
      ret y
    }
  )");
  propagateCopies(F);
  verifyFunctionOrDie(F, "after copyprop");
  EXPECT_EQ(interpret(F, {9, 1}).ReturnValue, 9);
  EXPECT_EQ(interpret(F, {9, 0}).ReturnValue, 5);
}

TEST(DeadCodeElim, RemovesUnusedChains) {
  Function F = ssaOf(R"(
    func f(a) {
    entry:
      dead1 = a + 1
      dead2 = dead1 * 3
      live = a + 2
      ret live
    }
  )");
  EXPECT_EQ(eliminateDeadCode(F), 2u);
  EXPECT_EQ(countKind(F, StmtKind::Compute), 1u);
  EXPECT_EQ(interpret(F, {5}).ReturnValue, 7);
}

TEST(DeadCodeElim, KeepsFaultingComputations) {
  Function F = ssaOf(R"(
    func f(a, b) {
    entry:
      dead = a / b
      ret a
    }
  )");
  EXPECT_EQ(eliminateDeadCode(F), 0u);
  EXPECT_TRUE(interpret(F, {1, 0}).Trapped);
}

TEST(DeadCodeElim, DeletesSafeConstantDivision) {
  Function F = ssaOf(R"(
    func f(a) {
    entry:
      dead = a / 4
      ret a
    }
  )");
  EXPECT_EQ(eliminateDeadCode(F), 1u);
  EXPECT_EQ(countKind(F, StmtKind::Compute), 0u);
}

TEST(DeadCodeElim, KeepsPrintOperandsAlive) {
  Function F = ssaOf(R"(
    func f(a) {
    entry:
      x = a * 2
      print x
      ret 0
    }
  )");
  EXPECT_EQ(eliminateDeadCode(F), 0u);
}

TEST(CleanupPipeline, TidiesPreOutput) {
  // After PRE, reload copies exist; the pipeline folds them away without
  // changing behavior or computation counts.
  Function F = parseFunctionOrDie(R"(
    func f(a, b, p) {
    entry:
      br p, t, e
    t:
      x = a + b
      print x
      jmp j
    e:
      print 0
      jmp j
    j:
      z = a + b
      ret z
    }
  )");
  prepareFunction(F);
  PreOptions PO;
  PO.Strategy = PreStrategy::SsaPre;
  Function Opt = compileWithPre(F, PO);
  unsigned CopiesBefore = countKind(Opt, StmtKind::Copy);
  ExecResult Before = interpret(Opt, {1, 2, 1});
  unsigned Changes = runCleanupPipeline(Opt);
  verifyFunctionOrDie(Opt, "after cleanup");
  EXPECT_GT(Changes, 0u);
  EXPECT_LT(countKind(Opt, StmtKind::Copy), CopiesBefore);
  ExecResult After = interpret(Opt, {1, 2, 1});
  EXPECT_TRUE(Before.sameObservableBehavior(After));
  EXPECT_EQ(Before.DynamicComputations, After.DynamicComputations);
}

TEST(CleanupPipeline, PreservesSemanticsOnRandomPrograms) {
  for (uint64_t Seed = 700; Seed <= 730; ++Seed) {
    GeneratorConfig Cfg0;
    Cfg0.AllowDiv = Seed % 2 == 0;
    Function F = generateProgram(Seed, Cfg0);
    prepareFunction(F);
    Function S = F;
    constructSsa(S);
    Function Cleaned = S;
    runCleanupPipeline(Cleaned);
    std::string Error;
    ASSERT_TRUE(verifyFunction(Cleaned, Error)) << "seed " << Seed << ": "
                                                << Error;
    for (int V = 0; V != 3; ++V) {
      std::vector<int64_t> Args(F.Params.size(),
                                static_cast<int64_t>(Seed * 11 + V * 3));
      ExecResult A = interpret(S, Args);
      ExecResult B = interpret(Cleaned, Args);
      ASSERT_TRUE(A.sameObservableBehavior(B)) << "seed " << Seed;
      // Cleanups never add computations.
      ASSERT_LE(B.DynamicComputations, A.DynamicComputations);
    }
  }
}

TEST(CleanupPipeline, PreThenCleanupOnRandomPrograms) {
  for (uint64_t Seed = 750; Seed <= 765; ++Seed) {
    GeneratorConfig Cfg0;
    Function F = generateProgram(Seed, Cfg0);
    prepareFunction(F);
    Profile Prof;
    ExecOptions EO;
    EO.CollectProfile = &Prof;
    std::vector<int64_t> Args(F.Params.size(), static_cast<int64_t>(Seed));
    interpret(F, Args, EO);
    Profile NodeOnly = Prof.withoutEdgeFreqs();
    PreOptions PO;
    PO.Strategy = PreStrategy::McSsaPre;
    PO.Prof = &NodeOnly;
    Function Opt = compileWithPre(F, PO);
    runCleanupPipeline(Opt);
    std::string Error;
    ASSERT_TRUE(verifyFunction(Opt, Error)) << "seed " << Seed << ": "
                                            << Error;
    ExecResult A = interpret(F, Args);
    ExecResult B = interpret(Opt, Args);
    ASSERT_TRUE(A.sameObservableBehavior(B)) << "seed " << Seed;
    ASSERT_LE(B.DynamicComputations, A.DynamicComputations);
  }
}

TEST(CopyPropagation, KeepsPhiArgumentsSameVariable) {
  // Copy propagation must not substitute a foreign variable into a phi
  // argument: SSAPRE's rename relies on variable phis merging versions
  // of one variable (regression test; see opt/CopyPropagation.cpp).
  Function F = parseFunctionOrDie(R"(
    func f(a, p) {
    entry:
      w#1 = a#1 * 2
      x#1 = w#1
      br p#1, t, e
    t:
      x#2 = a#1 + 1
      jmp j
    e:
      jmp j
    j:
      x#3 = phi [t: x#2] [e: x#1]
      ret x#3
    }
  )");
  ASSERT_TRUE(F.IsSSA);
  propagateCopies(F);
  verifyFunctionOrDie(F, "after copyprop");
  const Stmt &Phi = F.Blocks[3].Stmts[0];
  ASSERT_EQ(Phi.Kind, StmtKind::Phi);
  for (const PhiArg &A : Phi.PhiArgs) {
    ASSERT_TRUE(A.Val.isVar());
    // Arguments stay versions of x, even though x#1 is a copy of w#1.
    EXPECT_EQ(F.varName(A.Val.Var), "x");
  }
  EXPECT_EQ(interpret(F, {5, 0}).ReturnValue, 10);
  EXPECT_EQ(interpret(F, {5, 1}).ReturnValue, 6);
}
