//===- tests/finalize_test.cpp - Finalize/CodeMotion (steps 9-10) tests ----------===//

#include "analysis/Cfg.h"
#include "analysis/DomTree.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "pre/CodeMotion.h"
#include "pre/Finalize.h"
#include "pre/Frg.h"
#include "pre/LexicalDataFlow.h"
#include "pre/McSsaPre.h"
#include "pre/PreDriver.h"
#include "pre/SsaPre.h"
#include "ssa/SsaConstruction.h"

#include <gtest/gtest.h>

using namespace specpre;

namespace {

struct Built {
  Function F;
  std::unique_ptr<Cfg> C;
  std::unique_ptr<DomTree> DT;
  ExprKey E;

  explicit Built(const char *Src, Opcode Op, const char *L, const char *R) {
    F = parseFunctionOrDie(Src);
    prepareFunction(F);
    constructSsa(F);
    C = std::make_unique<Cfg>(F);
    DT = std::make_unique<DomTree>(DomTree::buildDominators(*C));
    E.Op = Op;
    E.L.Var = F.findVar(L);
    E.R.Var = F.findVar(R);
  }
};

unsigned liveDefs(const FinalizePlan &Plan, TempDef::Kind K) {
  unsigned N = 0;
  for (const TempDef &D : Plan.TempDefs)
    N += D.Live && D.K == K;
  return N;
}

} // namespace

TEST(Finalize, SingleOccurrenceProducesNoPlan) {
  Built B(R"(
    func f(a, b) {
    entry:
      x = a + b
      ret x
    }
  )", Opcode::Add, "a", "b");
  Frg G(B.F, *B.C, *B.DT, B.E);
  std::vector<ExprKey> Exprs{B.E};
  LexicalDataFlow LDF = solveLexicalDataFlow(B.F, *B.C, Exprs);
  computeSafePlacement(G, LDF, 0, false, nullptr);
  FinalizePlan Plan = finalizePlacement(G);
  EXPECT_FALSE(Plan.hasAnyEffect());
  EXPECT_FALSE(G.reals()[0].Reload);
  EXPECT_FALSE(G.reals()[0].Save);
}

TEST(Finalize, StraightLineSaveAndReload) {
  Built B(R"(
    func f(a, b) {
    entry:
      x = a + b
      y = a + b
      ret y
    }
  )", Opcode::Add, "a", "b");
  Frg G(B.F, *B.C, *B.DT, B.E);
  std::vector<ExprKey> Exprs{B.E};
  LexicalDataFlow LDF = solveLexicalDataFlow(B.F, *B.C, Exprs);
  computeSafePlacement(G, LDF, 0, false, nullptr);
  FinalizePlan Plan = finalizePlacement(G);
  ASSERT_TRUE(Plan.hasAnyEffect());
  // First occurrence computes and saves; second reloads.
  EXPECT_FALSE(G.reals()[0].Reload);
  EXPECT_TRUE(G.reals()[0].Save);
  EXPECT_TRUE(G.reals()[1].Reload);
  EXPECT_EQ(liveDefs(Plan, TempDef::Kind::RealSave), 1u);
  EXPECT_EQ(liveDefs(Plan, TempDef::Kind::Phi), 0u);
  EXPECT_EQ(liveDefs(Plan, TempDef::Kind::Insert), 0u);
}

TEST(Finalize, DiamondNeedsTempPhiAndInsert) {
  Built B(R"(
    func f(a, b, p) {
    entry:
      br p, t, e
    t:
      x = a + b
      print x
      jmp j
    e:
      print 0
      jmp j
    j:
      z = a + b
      ret z
    }
  )", Opcode::Add, "a", "b");
  Frg G(B.F, *B.C, *B.DT, B.E);
  std::vector<ExprKey> Exprs{B.E};
  LexicalDataFlow LDF = solveLexicalDataFlow(B.F, *B.C, Exprs);
  computeSafePlacement(G, LDF, 0, false, nullptr);
  FinalizePlan Plan = finalizePlacement(G);
  EXPECT_EQ(liveDefs(Plan, TempDef::Kind::Phi), 1u);
  EXPECT_EQ(liveDefs(Plan, TempDef::Kind::Insert), 1u);
  EXPECT_EQ(liveDefs(Plan, TempDef::Kind::RealSave), 1u);

  VarId Temp = B.F.makeFreshVar("pre.tmp.test");
  unsigned Changes = applyCodeMotion(B.F, G, Plan, Temp);
  EXPECT_GE(Changes, 3u);
  EXPECT_EQ(interpret(B.F, {2, 3, 1}).DynamicComputations, 1u);
  EXPECT_EQ(interpret(B.F, {2, 3, 0}).DynamicComputations, 1u);
}

TEST(Finalize, DeadTempPhiIsRemoved) {
  // Both arms compute but nothing uses the value after the join: the
  // will_be_avail phi at the join must die in liveness (extraneous-phi
  // elimination), leaving the function untouched.
  Built B(R"(
    func f(a, b, p) {
    entry:
      br p, t, e
    t:
      x = a + b
      print x
      jmp j
    e:
      y = a + b
      print y
      jmp j
    j:
      ret a
    }
  )", Opcode::Add, "a", "b");
  Frg G(B.F, *B.C, *B.DT, B.E);
  std::vector<ExprKey> Exprs{B.E};
  LexicalDataFlow LDF = solveLexicalDataFlow(B.F, *B.C, Exprs);
  computeSafePlacement(G, LDF, 0, false, nullptr);
  FinalizePlan Plan = finalizePlacement(G);
  EXPECT_EQ(liveDefs(Plan, TempDef::Kind::Phi), 0u);
  EXPECT_FALSE(Plan.hasAnyEffect());
  for (const RealOcc &R : G.reals()) {
    EXPECT_FALSE(R.Reload);
    EXPECT_FALSE(R.Save);
  }
}

TEST(Finalize, SameVariableBothSides) {
  // Expression `a + a`: one variable serves as both operands; the whole
  // machinery (rename version tracking, finalize, code motion) must
  // handle the aliasing.
  Built B(R"(
    func f(a, p) {
    entry:
      br p, t, e
    t:
      x = a + a
      print x
      jmp j
    e:
      print 0
      jmp j
    j:
      z = a + a
      ret z
    }
  )", Opcode::Add, "a", "a");
  Frg G(B.F, *B.C, *B.DT, B.E);
  ASSERT_EQ(G.reals().size(), 2u);
  std::vector<ExprKey> Exprs{B.E};
  LexicalDataFlow LDF = solveLexicalDataFlow(B.F, *B.C, Exprs);
  computeSafePlacement(G, LDF, 0, false, nullptr);
  FinalizePlan Plan = finalizePlacement(G);
  VarId Temp = B.F.makeFreshVar("pre.tmp.aa");
  applyCodeMotion(B.F, G, Plan, Temp);
  EXPECT_EQ(interpret(B.F, {21, 1}).ReturnValue, 42);
  EXPECT_EQ(interpret(B.F, {21, 1}).DynamicComputations, 1u);
  EXPECT_EQ(interpret(B.F, {21, 0}).DynamicComputations, 1u);
}

TEST(Finalize, SameVariableKillRestartsClass) {
  Function F = parseFunctionOrDie(R"(
    func f(a) {
    entry:
      x = a * a
      a = a + 1
      y = a * a
      ret y
    }
  )");
  prepareFunction(F);
  PreOptions PO;
  PO.Strategy = PreStrategy::SsaPre;
  Function Opt = compileWithPre(F, PO);
  // Nothing to eliminate: the kill separates the occurrences.
  EXPECT_EQ(interpret(Opt, {5}).DynamicComputations, 3u);
  EXPECT_EQ(interpret(Opt, {5}).ReturnValue, 36);
}

TEST(Finalize, McSsaPreFeedsSameFinalize) {
  // The design point of steps 8-10: MC-SSAPRE's cut drives the identical
  // Finalize. Run both strategies on the same graph shape and check
  // the plan kinds line up with their placement decisions.
  Built B(R"(
    func f(a, b, p) {
    entry:
      br p, t, e
    t:
      x = a + b
      print x
      jmp j
    e:
      print 0
      jmp j
    j:
      z = a + b
      ret z
    }
  )", Opcode::Add, "a", "b");
  Frg G(B.F, *B.C, *B.DT, B.E);
  Profile Prof;
  Prof.reset(B.F.numBlocks(), false);
  for (auto &BF : Prof.BlockFreq)
    BF = 10;
  for (unsigned Blk = 0; Blk != B.F.numBlocks(); ++Blk)
    if (B.F.Blocks[Blk].Label == "e")
      Prof.BlockFreq[Blk] = 1; // cold bottom: insertion wins
  EfgStats S = computeSpeculativePlacement(G, Prof);
  EXPECT_EQ(S.NumInsertions, 1u);
  FinalizePlan Plan = finalizePlacement(G);
  EXPECT_EQ(liveDefs(Plan, TempDef::Kind::Insert), 1u);
  EXPECT_EQ(liveDefs(Plan, TempDef::Kind::Phi), 1u);
}
