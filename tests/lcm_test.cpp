//===- tests/lcm_test.cpp - Lazy code motion tests and SSAPRE oracle ------------===//
//
// Besides exercising LCM itself, this file contains one of the strongest
// checks in the suite: safe SSAPRE and LCM are two independent
// implementations of the *same* unique optimum (computationally optimal
// safe placement minimizes the computation count on every path), so the
// two optimized programs must execute exactly the same number of dynamic
// computations on every input.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "pre/PreDriver.h"
#include "workload/ProgramGenerator.h"

#include <gtest/gtest.h>

using namespace specpre;

namespace {

Function optimize(const Function &Prepared, PreStrategy S) {
  PreOptions PO;
  PO.Strategy = S;
  return compileWithPre(Prepared, PO);
}

uint64_t dynComputations(const Function &F, const std::vector<int64_t> &A) {
  ExecResult R = interpret(F, A);
  EXPECT_FALSE(R.Trapped);
  EXPECT_FALSE(R.TimedOut);
  return R.DynamicComputations;
}

} // namespace

TEST(Lcm, FullRedundancyEliminated) {
  Function F = parseFunctionOrDie(R"(
    func f(a, b) {
    entry:
      x = a + b
      y = a + b
      ret y
    }
  )");
  prepareFunction(F);
  Function Opt = optimize(F, PreStrategy::Lcm);
  EXPECT_EQ(dynComputations(Opt, {2, 3}), 1u);
  EXPECT_EQ(interpret(Opt, {2, 3}).ReturnValue, 5);
}

TEST(Lcm, ClassicDiamondInsertion) {
  Function F = parseFunctionOrDie(R"(
    func f(a, b, p) {
    entry:
      br p, t, e
    t:
      x = a + b
      print x
      jmp j
    e:
      print 0
      jmp j
    j:
      z = a + b
      ret z
    }
  )");
  prepareFunction(F);
  Function Opt = optimize(F, PreStrategy::Lcm);
  EXPECT_EQ(dynComputations(Opt, {1, 2, 1}), 1u);
  EXPECT_EQ(dynComputations(Opt, {1, 2, 0}), 1u);
}

TEST(Lcm, SafetyNeverHoistsAboveBranch) {
  Function F = parseFunctionOrDie(R"(
    func f(a, b, p) {
    entry:
      br p, yes, no
    yes:
      x = a + b
      ret x
    no:
      ret 0
    }
  )");
  prepareFunction(F);
  Function Opt = optimize(F, PreStrategy::Lcm);
  EXPECT_EQ(dynComputations(Opt, {1, 2, 0}), 0u);
  EXPECT_EQ(dynComputations(Opt, {1, 2, 1}), 1u);
}

TEST(Lcm, HandlesFaultingExpressionsSafely) {
  // Unlike the speculative algorithms, LCM needs no fault special-case:
  // anticipation already guarantees the division would have executed.
  Function F = parseFunctionOrDie(R"(
    func f(a, b, p) {
    entry:
      br p, t, e
    t:
      x = a / b
      print x
      jmp j
    e:
      print 0
      jmp j
    j:
      z = a / b
      ret z
    }
  )");
  prepareFunction(F);
  Function Opt = optimize(F, PreStrategy::Lcm);
  EXPECT_EQ(dynComputations(Opt, {6, 2, 1}), 1u);
  // Still traps exactly when the original trapped.
  EXPECT_TRUE(interpret(Opt, {6, 0, 1}).Trapped);
  EXPECT_TRUE(interpret(Opt, {6, 0, 0}).Trapped);
}

TEST(Lcm, LoopInvariantAfterRestructuring) {
  Function F = parseFunctionOrDie(R"(
    func f(a, b, n) {
    entry:
      i = 0
      s = 0
      jmp h
    h:
      t = i < n
      br t, body, exit
    body:
      x = a + b
      s = s + x
      i = i + 1
      jmp h
    exit:
      ret s
    }
  )");
  prepareFunction(F);
  Function Opt = optimize(F, PreStrategy::Lcm);
  Function Orig = parseFunctionOrDie(printFunction(F));
  EXPECT_EQ(dynComputations(Orig, {3, 4, 10}) -
                dynComputations(Opt, {3, 4, 10}),
            9u);
}

namespace {

class LcmOracle : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(LcmOracle, SafeSsaPreMatchesLcmOnEveryInput) {
  uint64_t Seed = GetParam();
  GeneratorConfig Cfg0;
  Cfg0.AllowDiv = Seed % 3 == 0;
  Cfg0.MaxDepth = 2 + Seed % 3;
  Function Prepared = generateProgram(Seed, Cfg0);
  prepareFunction(Prepared);

  Function ViaSsaPre = optimize(Prepared, PreStrategy::SsaPre);
  Function ViaLcm = optimize(Prepared, PreStrategy::Lcm);

  for (int Variant = 0; Variant != 5; ++Variant) {
    std::vector<int64_t> Args;
    for (unsigned P = 0; P != Prepared.Params.size(); ++P)
      Args.push_back(static_cast<int64_t>(Seed * 53 + Variant * 1009 + P));
    ExecResult Base = interpret(Prepared, Args);
    ExecResult A = interpret(ViaSsaPre, Args);
    ExecResult B = interpret(ViaLcm, Args);
    ASSERT_TRUE(Base.sameObservableBehavior(A)) << "SSAPRE, seed " << Seed;
    ASSERT_TRUE(Base.sameObservableBehavior(B)) << "LCM, seed " << Seed;
    // The unique safe optimum: equal counts, input by input.
    ASSERT_EQ(A.DynamicComputations, B.DynamicComputations)
        << "SSAPRE and LCM disagree, seed " << Seed << " variant "
        << Variant;
    ASSERT_LE(B.DynamicComputations, Base.DynamicComputations);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, LcmOracle,
                         ::testing::Range<uint64_t>(500, 545));
