//===- tests/support_test.cpp - PRNG and support tests ------------------------===//

#include "support/Random.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace specpre;

TEST(Rng, DeterministicForSameSeed) {
  Rng A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I != 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 4);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng R(7);
  for (uint64_t Bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int I = 0; I != 200; ++I)
      EXPECT_LT(R.nextBelow(Bound), Bound);
  }
}

TEST(Rng, NextInRangeInclusive) {
  Rng R(9);
  std::set<int64_t> Seen;
  for (int I = 0; I != 500; ++I) {
    int64_t V = R.nextInRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 7u); // all values hit
}

TEST(Rng, RoughlyUniform) {
  Rng R(1234);
  std::map<uint64_t, unsigned> Counts;
  const unsigned N = 8000;
  for (unsigned I = 0; I != N; ++I)
    ++Counts[R.nextBelow(8)];
  for (auto [V, C] : Counts) {
    EXPECT_GT(C, N / 8 - N / 32) << "value " << V;
    EXPECT_LT(C, N / 8 + N / 32) << "value " << V;
  }
}

TEST(Rng, ChanceExtremes) {
  Rng R(5);
  for (int I = 0; I != 50; ++I) {
    EXPECT_FALSE(R.chance(0, 10));
    EXPECT_TRUE(R.chance(10, 10));
  }
}

//===----------------------------------------------------------------------===//
// ThreadPool exception propagation
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <atomic>
#include <stdexcept>

using specpre::ThreadPool;

TEST(ThreadPoolErrors, WorkerExceptionReachesCaller) {
  ThreadPool Pool(4);
  std::atomic<unsigned> Ran{0};
  try {
    Pool.parallelFor(64, [&](size_t I) {
      ++Ran;
      if (I == 17)
        throw std::runtime_error("boom at 17");
    });
    FAIL() << "expected the worker exception to propagate";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "boom at 17");
  }
  // The batch is not abandoned: every index still ran.
  EXPECT_EQ(Ran.load(), 64u);
}

TEST(ThreadPoolErrors, SmallestFailingIndexWinsDeterministically) {
  // With several failing indices, the reported error is the smallest
  // index's — the same one the serial (jobs=1) path would surface.
  for (unsigned Jobs : {1u, 4u}) {
    ThreadPool Pool(Jobs);
    try {
      Pool.parallelFor(32, [&](size_t I) {
        if (I == 5 || I == 23)
          throw std::runtime_error("fail " + std::to_string(I));
      });
      FAIL() << "expected an exception (jobs=" << Jobs << ")";
    } catch (const std::runtime_error &E) {
      EXPECT_STREQ(E.what(), "fail 5") << "jobs=" << Jobs;
    }
  }
}

TEST(ThreadPoolErrors, PoolSurvivesAFailedBatch) {
  ThreadPool Pool(4);
  EXPECT_THROW(
      Pool.parallelFor(8, [](size_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
  // The next batch on the same pool runs normally.
  std::atomic<unsigned> Ran{0};
  Pool.parallelFor(16, [&](size_t) { ++Ran; });
  EXPECT_EQ(Ran.load(), 16u);
}
