//===- tests/support_test.cpp - PRNG and support tests ------------------------===//

#include "support/Random.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace specpre;

TEST(Rng, DeterministicForSameSeed) {
  Rng A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I != 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 4);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng R(7);
  for (uint64_t Bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int I = 0; I != 200; ++I)
      EXPECT_LT(R.nextBelow(Bound), Bound);
  }
}

TEST(Rng, NextInRangeInclusive) {
  Rng R(9);
  std::set<int64_t> Seen;
  for (int I = 0; I != 500; ++I) {
    int64_t V = R.nextInRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 7u); // all values hit
}

TEST(Rng, RoughlyUniform) {
  Rng R(1234);
  std::map<uint64_t, unsigned> Counts;
  const unsigned N = 8000;
  for (unsigned I = 0; I != N; ++I)
    ++Counts[R.nextBelow(8)];
  for (auto [V, C] : Counts) {
    EXPECT_GT(C, N / 8 - N / 32) << "value " << V;
    EXPECT_LT(C, N / 8 + N / 32) << "value " << V;
  }
}

TEST(Rng, ChanceExtremes) {
  Rng R(5);
  for (int I = 0; I != 50; ++I) {
    EXPECT_FALSE(R.chance(0, 10));
    EXPECT_TRUE(R.chance(10, 10));
  }
}
