//===- tests/parallel_driver_test.cpp - Parallel pipeline determinism ----------===//
//
// The determinism differential battery for the parallel PRE pipeline:
// the whole generated corpus runs through the serial reference pipeline
// (compileWithPre — untouched by the parallel driver) and through
// ParallelPreDriver at --jobs=4, and the outputs must match
// bit-identically — printed IR, interpreter dynamic counts, and the
// merged PreStats record sequence — for all six strategies. Plus unit
// tests of the work-stealing ThreadPool itself.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ir/Printer.h"
#include "pre/ParallelDriver.h"
#include "pre/PreDriver.h"
#include "profile/Profile.h"
#include "support/ThreadPool.h"
#include "workload/ProgramGenerator.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

using namespace specpre;

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool Pool(4);
  for (size_t N : {0u, 1u, 3u, 7u, 64u, 1000u}) {
    std::vector<std::atomic<int>> Hits(N);
    Pool.parallelFor(N, [&](size_t I) { ++Hits[I]; });
    for (size_t I = 0; I != N; ++I)
      ASSERT_EQ(Hits[I].load(), 1) << "index " << I << " of " << N;
  }
}

TEST(ThreadPool, DeterministicReductionByIndexSlot) {
  // The determinism pattern every user of the pool follows: write into
  // per-index slots, reduce in index order. Scheduling may vary; the
  // reduced result may not.
  ThreadPool Pool(4);
  std::vector<uint64_t> Reference;
  for (int Round = 0; Round != 10; ++Round) {
    std::vector<uint64_t> Slots(257);
    Pool.parallelFor(Slots.size(),
                     [&](size_t I) { Slots[I] = I * I + 13 * I + 7; });
    if (Reference.empty())
      Reference = Slots;
    ASSERT_EQ(Slots, Reference);
  }
}

TEST(ThreadPool, NestedParallelForCompletes) {
  ThreadPool Pool(4);
  std::atomic<int> Total{0};
  Pool.parallelFor(8, [&](size_t) {
    Pool.parallelFor(16, [&](size_t) { ++Total; });
  });
  EXPECT_EQ(Total.load(), 8 * 16);
}

TEST(ThreadPool, MoreWorkersThanItems) {
  ThreadPool Pool(16);
  std::atomic<int> Total{0};
  Pool.parallelFor(3, [&](size_t I) { Total += static_cast<int>(I); });
  EXPECT_EQ(Total.load(), 3);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.workers(), 1u);
  std::vector<size_t> Order;
  // Inline execution is strictly in-order — no pool thread involved.
  Pool.parallelFor(10, [&](size_t I) { Order.push_back(I); });
  std::vector<size_t> Expected(10);
  std::iota(Expected.begin(), Expected.end(), 0);
  EXPECT_EQ(Order, Expected);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool Pool(3);
  for (int Round = 0; Round != 50; ++Round) {
    std::atomic<uint64_t> Sum{0};
    Pool.parallelFor(40, [&](size_t I) { Sum += I; });
    ASSERT_EQ(Sum.load(), 40u * 39u / 2);
  }
}

//===----------------------------------------------------------------------===//
// Determinism differential: serial reference vs --jobs=4
//===----------------------------------------------------------------------===//

namespace {

struct CorpusProgram {
  Function Prepared;
  Profile Prof;     ///< full profile (edge freqs; for MC-PRE)
  Profile NodeOnly; ///< node frequencies (for the SSA strategies)
  std::vector<int64_t> TrainArgs;
  std::vector<int64_t> RefArgs;
};

std::vector<CorpusProgram> buildCorpus() {
  std::vector<CorpusProgram> Corpus;
  for (uint64_t Seed : {3u, 11u, 17u, 23u, 41u, 59u, 71u, 83u, 97u, 113u}) {
    GeneratorConfig Cfg;
    Cfg.MaxDepth = 3 + Seed % 2;
    Cfg.ExprPoolSize = 8 + Seed % 5;
    CorpusProgram P;
    P.Prepared = generateProgram(Seed, Cfg, "corpus" + std::to_string(Seed));
    prepareFunction(P.Prepared);
    for (unsigned I = 0; I != P.Prepared.Params.size(); ++I) {
      P.TrainArgs.push_back(static_cast<int64_t>(Seed * 31 + I * 7));
      P.RefArgs.push_back(static_cast<int64_t>(Seed * 17 + I * 13 + 5));
    }
    ExecOptions EO;
    EO.CollectProfile = &P.Prof;
    ExecResult Train = interpret(P.Prepared, P.TrainArgs, EO);
    EXPECT_FALSE(Train.Trapped || Train.TimedOut);
    P.NodeOnly = P.Prof.withoutEdgeFreqs();
    Corpus.push_back(std::move(P));
  }
  return Corpus;
}

PreOptions optionsFor(const CorpusProgram &P, PreStrategy Strategy) {
  PreOptions PO;
  PO.Strategy = Strategy;
  PO.Prof = Strategy == PreStrategy::McPre ? &P.Prof : &P.NodeOnly;
  PO.Verify = true;
  return PO;
}

class ParallelDifferential : public ::testing::TestWithParam<PreStrategy> {};

} // namespace

TEST_P(ParallelDifferential, BitIdenticalToSerialOnCorpus) {
  PreStrategy Strategy = GetParam();
  std::vector<CorpusProgram> Corpus = buildCorpus();

  // Serial reference: the unmodified PreDriver pipeline, function by
  // function, shards stamped and merged like any corpus driver would.
  std::vector<std::string> SerialIr;
  std::vector<Function> SerialFns;
  PreStats SerialStats;
  for (unsigned I = 0; I != Corpus.size(); ++I) {
    PreOptions PO = optionsFor(Corpus[I], Strategy);
    PreStats Shard;
    PO.Stats = &Shard;
    Function Opt = compileWithPre(Corpus[I].Prepared, PO);
    SerialIr.push_back(printFunction(Opt));
    SerialFns.push_back(std::move(Opt));
    Shard.stampFunctionIndex(I);
    SerialStats.merge(Shard);
  }

  // Parallel: 4 workers, functions and expressions fanned out.
  ParallelConfig PC;
  PC.Jobs = 4;
  ParallelPreDriver Driver(PC);
  std::vector<CompileTask> Tasks;
  for (const CorpusProgram &P : Corpus)
    Tasks.push_back({&P.Prepared, optionsFor(P, Strategy)});
  PreStats ParallelStats;
  std::vector<Function> ParallelFns =
      Driver.compileCorpus(Tasks, &ParallelStats);

  // 1. Identical printed IR, program by program.
  ASSERT_EQ(ParallelFns.size(), Corpus.size());
  for (unsigned I = 0; I != Corpus.size(); ++I)
    EXPECT_EQ(printFunction(ParallelFns[I]), SerialIr[I])
        << "IR diverged on corpus program " << I << " under "
        << strategyName(Strategy);

  // 2. Identical interpreter behavior and dynamic counts on an input the
  // profile never saw.
  for (unsigned I = 0; I != Corpus.size(); ++I) {
    ExecResult Serial = interpret(SerialFns[I], Corpus[I].RefArgs);
    ExecResult Parallel = interpret(ParallelFns[I], Corpus[I].RefArgs);
    EXPECT_TRUE(Serial.sameObservableBehavior(Parallel));
    EXPECT_EQ(Serial.DynamicComputations, Parallel.DynamicComputations)
        << "dynamic count diverged on corpus program " << I;
    EXPECT_EQ(Serial.Cycles, Parallel.Cycles);
  }

  // 3. Identical merged statistics records, field for field.
  ASSERT_EQ(ParallelStats.records().size(), SerialStats.records().size());
  for (unsigned I = 0; I != SerialStats.records().size(); ++I)
    EXPECT_TRUE(ParallelStats.records()[I] == SerialStats.records()[I])
        << "stats record " << I << " diverged ("
        << SerialStats.records()[I].FunctionName << " / "
        << SerialStats.records()[I].Expr << ")";
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, ParallelDifferential,
    ::testing::Values(PreStrategy::SsaPre, PreStrategy::SsaPreSpec,
                      PreStrategy::McSsaPre, PreStrategy::McPre,
                      PreStrategy::Lcm, PreStrategy::Lospre),
    [](const ::testing::TestParamInfo<PreStrategy> &Info) {
      switch (Info.param) {
      case PreStrategy::SsaPre:
        return "SsaPre";
      case PreStrategy::SsaPreSpec:
        return "SsaPreSpec";
      case PreStrategy::McSsaPre:
        return "McSsaPre";
      case PreStrategy::McPre:
        return "McPre";
      case PreStrategy::Lospre:
        return "Lospre";
      default:
        return "Lcm";
      }
    });

// Determinism of repeated parallel runs against each other (scheduling
// noise must never leak into the output), at several worker counts.
TEST(ParallelDriver, StableAcrossRunsAndWorkerCounts) {
  std::vector<CorpusProgram> Corpus = buildCorpus();
  const CorpusProgram &P = Corpus[0];

  std::string Reference;
  for (unsigned Jobs : {1u, 2u, 4u, 8u}) {
    ParallelConfig PC;
    PC.Jobs = Jobs;
    ParallelPreDriver Driver(PC);
    for (int Round = 0; Round != 3; ++Round) {
      PreStats Stats;
      PreOptions PO = optionsFor(P, PreStrategy::McSsaPre);
      PO.Stats = &Stats;
      Function Opt = Driver.compileFunction(P.Prepared, PO);
      std::string Ir = printFunction(Opt);
      if (Reference.empty())
        Reference = Ir;
      ASSERT_EQ(Ir, Reference)
          << "jobs=" << Jobs << " round " << Round;
    }
  }
}

// The per-expression fan-out also feeds the metrics sink shard-safely:
// invocation counts are exact (they are not wall-clock-dependent).
TEST(ParallelDriver, MetricsInvocationCountsMatchSerial) {
  std::vector<CorpusProgram> Corpus = buildCorpus();

  auto CountsFor = [&](unsigned Jobs) {
    ParallelConfig PC;
    PC.Jobs = Jobs;
    ParallelPreDriver Driver(PC);
    std::vector<CompileTask> Tasks;
    for (const CorpusProgram &P : Corpus)
      Tasks.push_back({&P.Prepared, optionsFor(P, PreStrategy::McSsaPre)});
    PipelineMetrics M;
    Driver.compileCorpus(Tasks, nullptr, &M);
    std::vector<uint64_t> Counts;
    for (unsigned S = 0; S != NumPipelineSteps; ++S)
      Counts.push_back(M.step(static_cast<PipelineStep>(S)).Invocations);
    return Counts;
  };

  // jobs=1 routes through the serial runPre (one FRG build per
  // expression); jobs=4 analyses and then commits (two builds per
  // expression with reals, one for real-less candidates) — so the
  // placement-step counts must match exactly and the FRG counts must
  // bracket the serial ones.
  std::vector<uint64_t> Serial = CountsFor(1);
  std::vector<uint64_t> Parallel = CountsFor(4);
  auto At = [](const std::vector<uint64_t> &V, PipelineStep S) {
    return V[static_cast<unsigned>(S)];
  };
  EXPECT_EQ(At(Serial, PipelineStep::DataFlow),
            At(Parallel, PipelineStep::DataFlow));
  EXPECT_EQ(At(Serial, PipelineStep::MinCut),
            At(Parallel, PipelineStep::MinCut));
  EXPECT_EQ(At(Serial, PipelineStep::Finalize),
            At(Parallel, PipelineStep::Finalize));
  EXPECT_EQ(At(Serial, PipelineStep::CodeMotion),
            At(Parallel, PipelineStep::CodeMotion));
  EXPECT_GE(At(Parallel, PipelineStep::PhiInsertion),
            At(Serial, PipelineStep::PhiInsertion));
  EXPECT_LE(At(Parallel, PipelineStep::PhiInsertion),
            2 * At(Serial, PipelineStep::PhiInsertion));
}
