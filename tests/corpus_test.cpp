//===- tests/corpus_test.cpp - Replay of reduced fuzz reproducers ---------------===//
//
// Every reproducer under tests/corpus/ is a minimal program that once
// tripped a fuzzing oracle at a buggy revision. Replaying the whole
// directory on each test run keeps the fixed bugs fixed; see
// tests/corpus/README.md for the file format.
//
//===----------------------------------------------------------------------===//

#include "workload/FuzzOracles.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

using namespace specpre;

#ifndef SPECPRE_CORPUS_DIR
#error "SPECPRE_CORPUS_DIR must point at tests/corpus"
#endif

namespace {

std::vector<std::string> corpusFiles() {
  std::vector<std::string> Out;
  for (const auto &Entry :
       std::filesystem::directory_iterator(SPECPRE_CORPUS_DIR))
    if (Entry.path().extension() == ".ir")
      Out.push_back(Entry.path().string());
  std::sort(Out.begin(), Out.end());
  return Out;
}

} // namespace

TEST(Corpus, DirectoryIsNotEmpty) {
  EXPECT_GE(corpusFiles().size(), 2u)
      << "expected at least the two seeded reproducers in "
      << SPECPRE_CORPUS_DIR;
}

TEST(Corpus, EveryReproducerReplaysClean) {
  for (const std::string &Path : corpusFiles()) {
    std::optional<OracleFailure> F = replayCorpusFile(Path);
    EXPECT_FALSE(F.has_value())
        << Path << ": oracle '" << (F ? F->Oracle : "") << "': "
        << (F ? F->Message : "");
  }
}
