//===- tests/metrics_json_test.cpp - PipelineMetrics / JSON export -------------===//
//
// The metrics smoke tests promised in docs/TESTING.md: the JSON emitted
// behind `specpre-opt --metrics-out=` must be well-formed, carry exactly
// one entry per pipeline step (in pipeline order), and report
// non-negative, consistent numbers. A minimal recursive-descent JSON
// parser lives in this file so the check does not depend on an external
// JSON library the toolchain may not have.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "pre/ParallelDriver.h"
#include "pre/PreDriver.h"
#include "profile/Profile.h"
#include "support/PassTimer.h"
#include "workload/ProgramGenerator.h"

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <string>
#include <variant>
#include <vector>

using namespace specpre;

//===----------------------------------------------------------------------===//
// Minimal JSON parser (objects, arrays, strings, numbers)
//===----------------------------------------------------------------------===//

namespace {

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  std::variant<std::monostate, double, std::string, JsonArray, JsonObject> V;

  bool isNumber() const { return std::holds_alternative<double>(V); }
  double num() const { return std::get<double>(V); }
  const std::string &str() const { return std::get<std::string>(V); }
  const JsonArray &arr() const { return std::get<JsonArray>(V); }
  const JsonObject &obj() const { return std::get<JsonObject>(V); }
};

class JsonParser {
public:
  explicit JsonParser(const std::string &Text) : Text(Text) {}

  /// Parses the whole input; sets Ok=false on any syntax error or
  /// trailing garbage.
  JsonValue parse() {
    JsonValue V = parseValue();
    skipWs();
    if (Pos != Text.size())
      Ok = false;
    return V;
  }

  bool ok() const { return Ok; }

private:
  void skipWs() {
    while (Pos < Text.size() && std::isspace(static_cast<unsigned char>(
                                    Text[Pos])))
      ++Pos;
  }

  char peek() {
    skipWs();
    return Pos < Text.size() ? Text[Pos] : '\0';
  }

  bool consume(char C) {
    if (peek() != C) {
      Ok = false;
      return false;
    }
    ++Pos;
    return true;
  }

  JsonValue parseValue() {
    switch (peek()) {
    case '{':
      return parseObject();
    case '[':
      return parseArray();
    case '"':
      return {JsonValue{parseString()}};
    default:
      return parseNumber();
    }
  }

  std::string parseString() {
    std::string S;
    if (!consume('"'))
      return S;
    while (Pos < Text.size() && Text[Pos] != '"') {
      if (Text[Pos] == '\\' && Pos + 1 < Text.size())
        ++Pos;
      S += Text[Pos++];
    }
    if (Pos == Text.size())
      Ok = false;
    else
      ++Pos; // closing quote
    return S;
  }

  JsonValue parseNumber() {
    skipWs();
    size_t Start = Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '-' || Text[Pos] == '+' || Text[Pos] == '.' ||
            Text[Pos] == 'e' || Text[Pos] == 'E'))
      ++Pos;
    if (Pos == Start) {
      Ok = false;
      return {};
    }
    try {
      return {JsonValue{std::stod(Text.substr(Start, Pos - Start))}};
    } catch (...) {
      Ok = false;
      return {};
    }
  }

  JsonValue parseArray() {
    JsonArray A;
    consume('[');
    if (peek() == ']') {
      ++Pos;
      return {JsonValue{std::move(A)}};
    }
    while (Ok) {
      A.push_back(parseValue());
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      consume(']');
      break;
    }
    return {JsonValue{std::move(A)}};
  }

  JsonValue parseObject() {
    JsonObject O;
    consume('{');
    if (peek() == '}') {
      ++Pos;
      return {JsonValue{std::move(O)}};
    }
    while (Ok) {
      if (peek() != '"') {
        Ok = false;
        break;
      }
      std::string Key = parseString();
      consume(':');
      O.emplace(std::move(Key), parseValue());
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      consume('}');
      break;
    }
    return {JsonValue{std::move(O)}};
  }

  const std::string &Text;
  size_t Pos = 0;
  bool Ok = true;
};

/// Runs one generated program through PRE with metrics collection.
PipelineMetrics collectMetrics(PreStrategy Strategy, unsigned Jobs) {
  GeneratorConfig Cfg;
  Function F = generateProgram(19, Cfg, "metrics");
  prepareFunction(F);
  Profile Prof;
  ExecOptions EO;
  EO.CollectProfile = &Prof;
  std::vector<int64_t> Args(F.Params.size(), 11);
  interpret(F, Args, EO);
  Profile NodeOnly = Prof.withoutEdgeFreqs();

  PreOptions PO;
  PO.Strategy = Strategy;
  PO.Prof = Strategy == PreStrategy::McPre ? &Prof : &NodeOnly;

  ParallelConfig PC;
  PC.Jobs = Jobs;
  ParallelPreDriver Driver(PC);
  PipelineMetrics M;
  Driver.compileFunction(F, PO, &M);
  return M;
}

} // namespace

//===----------------------------------------------------------------------===//
// Schema tests
//===----------------------------------------------------------------------===//

TEST(MetricsJson, OneEntryPerStepInPipelineOrder) {
  PipelineMetrics M = collectMetrics(PreStrategy::McSsaPre, 1);
  std::string Json = M.toJson();
  JsonParser P(Json);
  JsonValue V = P.parse();
  ASSERT_TRUE(P.ok()) << "invalid JSON: " << Json;

  const JsonArray &Steps = V.arr();
  ASSERT_EQ(Steps.size(), NumPipelineSteps);
  for (unsigned S = 0; S != NumPipelineSteps; ++S) {
    const JsonObject &O = Steps[S].obj();
    ASSERT_TRUE(O.count("step"));
    ASSERT_TRUE(O.count("invocations"));
    ASSERT_TRUE(O.count("millis"));
    ASSERT_TRUE(O.count("problem_size"));
    EXPECT_EQ(O.at("step").str(),
              pipelineStepName(static_cast<PipelineStep>(S)));
    EXPECT_GE(O.at("invocations").num(), 0.0);
    EXPECT_GE(O.at("millis").num(), 0.0);
    EXPECT_GE(O.at("problem_size").num(), 0.0);
  }
}

TEST(MetricsJson, McSsaPreExercisesItsSteps) {
  PipelineMetrics M = collectMetrics(PreStrategy::McSsaPre, 1);
  // A non-trivial generated program has candidates, so the FRG steps and
  // the MC data flow must have run; wall time is bounded below by zero
  // but invocation counts are exact.
  EXPECT_GT(M.step(PipelineStep::PhiInsertion).Invocations, 0u);
  EXPECT_GT(M.step(PipelineStep::Rename).Invocations, 0u);
  EXPECT_GT(M.step(PipelineStep::DataFlow).Invocations, 0u);
  EXPECT_GT(M.step(PipelineStep::Finalize).Invocations, 0u);
  EXPECT_GT(M.totalNanos(), 0u);
  // Problem sizes accompany the invocations.
  EXPECT_GT(M.step(PipelineStep::PhiInsertion).ProblemSize, 0u);
}

TEST(MetricsJson, ParallelCollectionLosesNothing) {
  // Exact counters (invocations) must agree between jobs=1 and jobs=4 for
  // the steps the transfer scheme runs once per candidate.
  PipelineMetrics Serial = collectMetrics(PreStrategy::McSsaPre, 1);
  PipelineMetrics Parallel = collectMetrics(PreStrategy::McSsaPre, 4);
  for (PipelineStep S : {PipelineStep::DataFlow, PipelineStep::Reduction,
                         PipelineStep::MinCut, PipelineStep::Finalize,
                         PipelineStep::CodeMotion})
    EXPECT_EQ(Serial.step(S).Invocations, Parallel.step(S).Invocations)
        << pipelineStepName(S);
}

TEST(MetricsJson, MergeSumsShards) {
  PipelineMetrics A, B;
  A.note(PipelineStep::MinCut, 100, 7);
  A.note(PipelineStep::MinCut, 50, 3);
  B.note(PipelineStep::MinCut, 25, 1);
  B.note(PipelineStep::Rename, 10, 2);
  A.merge(B);
  EXPECT_EQ(A.step(PipelineStep::MinCut).Invocations, 3u);
  EXPECT_EQ(A.step(PipelineStep::MinCut).Nanos, 175u);
  EXPECT_EQ(A.step(PipelineStep::MinCut).ProblemSize, 11u);
  EXPECT_EQ(A.step(PipelineStep::Rename).Invocations, 1u);
  EXPECT_EQ(A.totalNanos(), 185u);
}

TEST(MetricsJson, NoSinkMeansNoCollection) {
  EXPECT_EQ(currentMetricsSink(), nullptr);
  { PassTimer T(PipelineStep::MinCut, 99); } // no-op without a sink
  PipelineMetrics M;
  {
    MetricsScope Scope(&M);
    EXPECT_EQ(currentMetricsSink(), &M);
    {
      MetricsScope Inner(nullptr); // suspension
      EXPECT_EQ(currentMetricsSink(), nullptr);
      PassTimer T(PipelineStep::MinCut, 5);
    }
    EXPECT_EQ(currentMetricsSink(), &M);
  }
  EXPECT_EQ(currentMetricsSink(), nullptr);
  EXPECT_EQ(M.step(PipelineStep::MinCut).Invocations, 0u);
  EXPECT_EQ(M.totalNanos(), 0u);
}

TEST(MetricsJson, EmptyMetricsStillFullSchema) {
  PipelineMetrics M;
  std::string Json = M.toJson();
  JsonParser P(Json);
  JsonValue V = P.parse();
  ASSERT_TRUE(P.ok()) << "invalid JSON: " << Json;
  ASSERT_EQ(V.arr().size(), NumPipelineSteps);
  for (const JsonValue &Step : V.arr()) {
    EXPECT_EQ(Step.obj().at("invocations").num(), 0.0);
    EXPECT_EQ(Step.obj().at("millis").num(), 0.0);
  }
}
