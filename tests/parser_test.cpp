//===- tests/parser_test.cpp - Textual IR parser tests ------------------------===//

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "interp/Interpreter.h"

#include <gtest/gtest.h>

using namespace specpre;

TEST(Parser, SimpleFunction) {
  Function F = parseFunctionOrDie(R"(
    func f(a, b) {
    entry:
      x = a + b
      ret x
    }
  )");
  EXPECT_EQ(F.Name, "f");
  EXPECT_EQ(F.Params.size(), 2u);
  ASSERT_EQ(F.numBlocks(), 1u);
  ASSERT_EQ(F.Blocks[0].Stmts.size(), 2u);
  EXPECT_EQ(F.Blocks[0].Stmts[0].Kind, StmtKind::Compute);
  EXPECT_EQ(F.Blocks[0].Stmts[0].Op, Opcode::Add);
  std::string Error;
  EXPECT_TRUE(verifyFunction(F, Error)) << Error;
}

TEST(Parser, FlattensNestedExpressions) {
  Function F = parseFunctionOrDie(R"(
    func f(a, b, c) {
    entry:
      x = a + b * c
      ret x
    }
  )");
  // b*c into a temp, then a + temp into x.
  ASSERT_EQ(F.Blocks[0].Stmts.size(), 3u);
  EXPECT_EQ(F.Blocks[0].Stmts[0].Op, Opcode::Mul);
  EXPECT_EQ(F.Blocks[0].Stmts[1].Op, Opcode::Add);
  EXPECT_EQ(F.varName(F.Blocks[0].Stmts[1].Dest), "x");
}

TEST(Parser, Precedence) {
  Function F = parseFunctionOrDie(R"(
    func f(a, b, c) {
    entry:
      x = a + b == c & 1
      ret x
    }
  )");
  // Expected: ((a+b) == c) & 1 — & binds loosest of the three.
  ASSERT_EQ(F.Blocks[0].Stmts.size(), 4u);
  EXPECT_EQ(F.Blocks[0].Stmts[0].Op, Opcode::Add);
  EXPECT_EQ(F.Blocks[0].Stmts[1].Op, Opcode::CmpEq);
  EXPECT_EQ(F.Blocks[0].Stmts[2].Op, Opcode::And);
}

TEST(Parser, Parentheses) {
  Function F = parseFunctionOrDie(R"(
    func f(a, b, c) {
    entry:
      x = (a + b) * c
      ret x
    }
  )");
  ASSERT_EQ(F.Blocks[0].Stmts.size(), 3u);
  EXPECT_EQ(F.Blocks[0].Stmts[0].Op, Opcode::Add);
  EXPECT_EQ(F.Blocks[0].Stmts[1].Op, Opcode::Mul);
}

TEST(Parser, MinMaxCalls) {
  Function F = parseFunctionOrDie(R"(
    func f(a, b) {
    entry:
      x = min(a, b) + max(a, 3)
      ret x
    }
  )");
  ASSERT_EQ(F.Blocks[0].Stmts.size(), 4u);
  EXPECT_EQ(F.Blocks[0].Stmts[0].Op, Opcode::Min);
  EXPECT_EQ(F.Blocks[0].Stmts[1].Op, Opcode::Max);
  EXPECT_EQ(F.Blocks[0].Stmts[2].Op, Opcode::Add);
}

TEST(Parser, ControlFlowAndPhis) {
  Function F = parseFunctionOrDie(R"(
    func f(p) {
    entry:
      br p > 0, then, other
    then:
      a#1 = p#1 + 1
      jmp join
    other:
      a#2 = p#1 + 2
      jmp join
    join:
      a#3 = phi [then: a#1] [other: a#2]
      ret a#3
    }
  )");
  EXPECT_TRUE(F.IsSSA);
  ASSERT_EQ(F.numBlocks(), 4u);
  const Stmt &Phi = F.Blocks[3].Stmts[0];
  ASSERT_EQ(Phi.Kind, StmtKind::Phi);
  ASSERT_EQ(Phi.PhiArgs.size(), 2u);
  EXPECT_EQ(Phi.PhiArgs[0].Pred, 1);
  EXPECT_EQ(Phi.PhiArgs[1].Pred, 2);
}

TEST(Parser, NegativeConstantsAndUnaryMinus) {
  Function F = parseFunctionOrDie(R"(
    func f(a) {
    entry:
      x = -5
      y = -a
      z = x + -3
      ret z
    }
  )");
  EXPECT_EQ(F.Blocks[0].Stmts[0].Kind, StmtKind::Copy);
  EXPECT_EQ(F.Blocks[0].Stmts[0].Src0.Value, -5);
  // -a becomes 0 - a.
  EXPECT_EQ(F.Blocks[0].Stmts[1].Kind, StmtKind::Compute);
  EXPECT_EQ(F.Blocks[0].Stmts[1].Op, Opcode::Sub);
}

TEST(Parser, CommentsIgnored) {
  Function F = parseFunctionOrDie(R"(
    // header comment
    func f(a) {  // trailing
    entry:       // label comment
      x = a + 1  // stmt comment
      ret x
    }
  )");
  EXPECT_EQ(F.Blocks[0].Stmts.size(), 2u);
}

TEST(Parser, PrintStatement) {
  Function F = parseFunctionOrDie(R"(
    func f(a) {
    entry:
      print a + 1
      ret 0
    }
  )");
  ASSERT_EQ(F.Blocks[0].Stmts.size(), 3u);
  EXPECT_EQ(F.Blocks[0].Stmts[1].Kind, StmtKind::Print);
}

TEST(Parser, ErrorsAreReported) {
  std::string Error;
  EXPECT_FALSE(parseModule("func f( {", Error).has_value());
  EXPECT_FALSE(Error.empty());

  Error.clear();
  EXPECT_FALSE(parseModule(R"(
    func f(a) {
    entry:
      jmp nowhere
    }
  )", Error).has_value());
  EXPECT_NE(Error.find("nowhere"), std::string::npos);

  Error.clear();
  EXPECT_FALSE(parseModule(R"(
    func f(a) {
    entry:
      ret a
    entry:
      ret a
    }
  )", Error).has_value());
  EXPECT_NE(Error.find("duplicate"), std::string::npos);
}

TEST(Parser, RoundTripThroughPrinter) {
  const char *Src = R"(
    func roundtrip(p, q) {
    entry:
      x = p * q + 3
      br x >= 10, big, small
    big:
      print x
      jmp done
    small:
      x = x + 1
      jmp done
    done:
      ret x
    }
  )";
  Function F1 = parseFunctionOrDie(Src);
  std::string Printed = printFunction(F1);
  Function F2 = parseFunctionOrDie(Printed);
  // Printing the reparse must be a fixpoint.
  EXPECT_EQ(printFunction(F2), Printed);
  EXPECT_EQ(F1.numBlocks(), F2.numBlocks());
}

TEST(Parser, ModuleWithTwoFunctions) {
  std::string Error;
  auto M = parseModule(R"(
    func a() {
    e:
      ret 1
    }
    func b(x) {
    e:
      ret x
    }
  )", Error);
  ASSERT_TRUE(M.has_value()) << Error;
  EXPECT_EQ(M->Functions.size(), 2u);
  EXPECT_NE(M->findFunction("a"), nullptr);
  EXPECT_NE(M->findFunction("b"), nullptr);
  EXPECT_EQ(M->findFunction("c"), nullptr);
}

TEST(Parser, ShiftAndBitwisePrecedence) {
  Function F = parseFunctionOrDie(R"(
    func f(a, b) {
    entry:
      x = a << 2 | b >> 1
      ret x
    }
  )");
  // (a << 2) | (b >> 1): shl, shr, then or.
  ASSERT_EQ(F.Blocks[0].Stmts.size(), 4u);
  EXPECT_EQ(F.Blocks[0].Stmts[0].Op, Opcode::Shl);
  EXPECT_EQ(F.Blocks[0].Stmts[1].Op, Opcode::Shr);
  EXPECT_EQ(F.Blocks[0].Stmts[2].Op, Opcode::Or);
  EXPECT_EQ(interpret(F, {3, 8}).ReturnValue, (3 << 2) | (8 >> 1));
}

TEST(Parser, DeeplyNestedParentheses) {
  Function F = parseFunctionOrDie(R"(
    func f(a) {
    entry:
      x = ((((a + 1) * 2) - 3) % 7)
      ret x
    }
  )");
  EXPECT_EQ(interpret(F, {5}).ReturnValue, ((5 + 1) * 2 - 3) % 7);
}

TEST(Parser, EmptyParamList) {
  Function F = parseFunctionOrDie(R"(
    func f() {
    entry:
      ret 42
    }
  )");
  EXPECT_TRUE(F.Params.empty());
  EXPECT_EQ(interpret(F, {}).ReturnValue, 42);
}

TEST(Parser, BranchConditionCanBeExpression) {
  Function F = parseFunctionOrDie(R"(
    func f(a, b) {
    entry:
      br a * b > 10, big, small
    big:
      ret 1
    small:
      ret 0
    }
  )");
  EXPECT_EQ(interpret(F, {3, 4}).ReturnValue, 1);
  EXPECT_EQ(interpret(F, {3, 3}).ReturnValue, 0);
}

TEST(Parser, RejectsVersionOnKeywordStatements) {
  std::string Error;
  EXPECT_FALSE(parseModule(R"(
    func f(a) {
    entry:
      ret
    }
  )", Error).has_value());
}

TEST(Parser, RejectsMissingTerminatorContentGracefully) {
  std::string Error;
  // A block that ends the function without a terminator parses but then
  // fails verification, not parsing; the parser itself reports only
  // syntax issues.
  auto M = parseModule(R"(
    func f(a) {
    entry:
      x = a + 1
    }
  )", Error);
  ASSERT_TRUE(M.has_value()) << Error;
  std::string VerifyError;
  EXPECT_FALSE(verifyFunction(M->Functions[0], VerifyError));
}
