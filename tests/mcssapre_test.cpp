//===- tests/mcssapre_test.cpp - MC-SSAPRE (leg C) tests ------------------------===//

#include "analysis/Cfg.h"
#include "analysis/DomTree.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "pre/Frg.h"
#include "pre/McSsaPre.h"
#include "pre/PreDriver.h"
#include "ssa/SsaConstruction.h"

#include <gtest/gtest.h>

using namespace specpre;

namespace {

/// Runs the full pipeline: prepare, profile on TrainArgs, optimize with
/// the given strategy.
struct Compiled {
  Function Prepared;
  Function Optimized;
  Profile Prof;
};

Compiled compile(const char *Src, PreStrategy Strategy,
                 std::vector<int64_t> TrainArgs,
                 CutPlacement Placement = CutPlacement::Latest) {
  Compiled C;
  C.Prepared = parseFunctionOrDie(Src);
  prepareFunction(C.Prepared);
  ExecOptions EO;
  EO.CollectProfile = &C.Prof;
  interpret(C.Prepared, TrainArgs, EO);
  Profile NodeOnly = C.Prof.withoutEdgeFreqs();
  PreOptions PO;
  PO.Strategy = Strategy;
  PO.Prof = Strategy == PreStrategy::McPre ? &C.Prof : &NodeOnly;
  PO.Placement = Placement;
  C.Optimized = compileWithPre(C.Prepared, PO);
  return C;
}

uint64_t dynComputations(const Function &F, std::vector<int64_t> Args) {
  return interpret(F, Args).DynamicComputations;
}

/// The skewed-diamond scenario: the expression is used only on the cold
/// path, but its operands are available before the branch. Safe PRE
/// cannot touch it; speculation under a profile moves the computation to
/// the cold side.
const char *SkewedDiamond = R"(
  func f(a, b, n) {
  entry:
    i = 0
    s = 0
    jmp h
  h:
    t = i < n
    br t, body, exit
  body:
    c = i & 7
    cz = c == 0
    br cz, cold, hot
  cold:
    x = a + b
    s = s + x
    jmp latch
  hot:
    s = s + 1
    jmp latch
  latch:
    i = i + 1
    jmp h
  exit:
    ret s
  }
)";

} // namespace

TEST(McSsaPre, EmptyEfgWhenNoPartialRedundancy) {
  // Two independent computations with a kill in between: nothing
  // strictly partial, the EFG is empty.
  Function F = parseFunctionOrDie(R"(
    func f(a, b) {
    entry:
      x = a + b
      a = a + 1
      y = a + b
      ret y
    }
  )");
  prepareFunction(F);
  constructSsa(F);
  Cfg C(F);
  DomTree DT = DomTree::buildDominators(C);
  ExprKey K;
  K.Op = Opcode::Add;
  K.L.Var = F.findVar("a");
  K.R.Var = F.findVar("b");
  Frg G(F, C, DT, K);
  Profile Prof;
  Prof.reset(F.numBlocks(), false);
  EfgStats S = computeSpeculativePlacement(G, Prof);
  EXPECT_TRUE(S.Empty);
  EXPECT_EQ(S.NumInsertions, 0u);
}

TEST(McSsaPre, MinimalEfgIsFourNodes) {
  // The paper: a non-empty EFG cannot be smaller than 4 nodes (source,
  // sink, one Φ, one SPR occurrence). The diamond gives exactly that.
  Function F = parseFunctionOrDie(R"(
    func f(a, b, p) {
    entry:
      br p, t, e
    t:
      x = a + b
      print x
      jmp j
    e:
      print 0
      jmp j
    j:
      z = a + b
      ret z
    }
  )");
  prepareFunction(F);
  constructSsa(F);
  Cfg C(F);
  DomTree DT = DomTree::buildDominators(C);
  ExprKey K;
  K.Op = Opcode::Add;
  K.L.Var = F.findVar("a");
  K.R.Var = F.findVar("b");
  Frg G(F, C, DT, K);
  Profile Prof;
  Prof.reset(F.numBlocks(), false);
  for (auto &BF : Prof.BlockFreq)
    BF = 10;
  EfgStats S = computeSpeculativePlacement(G, Prof);
  EXPECT_FALSE(S.Empty);
  EXPECT_EQ(S.NumNodes, 4u);
}

TEST(McSsaPre, SpeculatesIntoColdPath) {
  // Trained where the cold path runs 1/8 of iterations: speculating the
  // computation into 'cold' (or keeping it in place — equal here since
  // cold is the only use) must at least not lose; against SSAPREsp the
  // invariant hoist wins. Check against safe SSAPRE.
  Compiled Mc = compile(SkewedDiamond, PreStrategy::McSsaPre, {3, 4, 64});
  Compiled Safe = compile(SkewedDiamond, PreStrategy::SsaPre, {3, 4, 64});
  uint64_t McCount = dynComputations(Mc.Optimized, {3, 4, 64});
  uint64_t SafeCount = dynComputations(Safe.Optimized, {3, 4, 64});
  EXPECT_LE(McCount, SafeCount);
  EXPECT_EQ(interpret(Mc.Optimized, {3, 4, 64}).ReturnValue,
            interpret(Safe.Optimized, {3, 4, 64}).ReturnValue);
}

TEST(McSsaPre, HoistsOutOfHotLoopUnderProfile) {
  // Invariant computed under a 7/8-hot condition inside the loop: the
  // min cut moves it to the loop entry (cost 1) instead of computing
  // ~7n/8 times.
  const char *Src = R"(
    func f(a, b, n) {
    entry:
      i = 0
      s = 0
      jmp h
    h:
      t = i < n
      br t, body, exit
    body:
      c = i & 7
      cz = c == 0
      br cz, cold, hot
    cold:
      s = s + 1
      jmp latch
    hot:
      x = a * b
      s = s + x
      jmp latch
    latch:
      i = i + 1
      jmp h
    exit:
      ret s
    }
  )";
  Compiled Mc = compile(Src, PreStrategy::McSsaPre, {3, 4, 64});
  Compiled Safe = compile(Src, PreStrategy::SsaPre, {3, 4, 64});
  uint64_t McCount = dynComputations(Mc.Optimized, {3, 4, 64});
  uint64_t SafeCount = dynComputations(Safe.Optimized, {3, 4, 64});
  // Safe computes a*b 56 times (hot iterations); MC computes it once.
  EXPECT_LE(McCount + 50, SafeCount);
  EXPECT_EQ(interpret(Mc.Optimized, {3, 4, 64}).ReturnValue,
            interpret(Safe.Optimized, {3, 4, 64}).ReturnValue);
}

TEST(McSsaPre, RespectsProfileDirection) {
  // The same program trained with opposite skews must place the
  // computation differently — measured by dynamic counts on matching
  // inputs. Program: expression used on one side of a branch whose
  // direction depends on p.
  const char *Src = R"(
    func f(a, b, p, n) {
    entry:
      i = 0
      s = 0
      jmp h
    h:
      t = i < n
      br t, body, exit
    body:
      c = i % p
      cz = c == 0
      br cz, use, skip
    use:
      x = a + b
      s = s + x
      jmp latch
    skip:
      s = s + 1
      jmp latch
    latch:
      i = i + 1
      jmp h
    exit:
      ret s
    }
  )";
  // p=1: 'use' taken every iteration (hot use) -> hoist pays.
  // p=1000: 'use' taken once per 1000 (cold use) -> keep in place.
  Compiled HotUse = compile(Src, PreStrategy::McSsaPre, {3, 4, 1, 64});
  Compiled ColdUse = compile(Src, PreStrategy::McSsaPre, {3, 4, 1000, 64});
  // Each must be no worse than the original on its own training input.
  EXPECT_LE(dynComputations(HotUse.Optimized, {3, 4, 1, 64}),
            dynComputations(HotUse.Prepared, {3, 4, 1, 64}));
  EXPECT_LE(dynComputations(ColdUse.Optimized, {3, 4, 1000, 64}),
            dynComputations(ColdUse.Prepared, {3, 4, 1000, 64}));
}

TEST(McSsaPre, FaultingExpressionFallsBackToSafePlacement) {
  const char *Src = R"(
    func f(a, b, n) {
    entry:
      i = 0
      s = 0
      jmp h
    h:
      t = i < n
      br t, body, exit
    body:
      c = i & 1
      br c, odd, even
    odd:
      x = a / b
      s = s + x
      jmp latch
    even:
      s = s + 1
      jmp latch
    latch:
      i = i + 1
      jmp h
    exit:
      ret s
    }
  )";
  Compiled Mc = compile(Src, PreStrategy::McSsaPre, {8, 2, 16});
  // With b == 0 and only one iteration (i=0 even), the original never
  // divides; the optimized must not introduce a trap.
  ExecResult R = interpret(Mc.Optimized, {8, 0, 1});
  EXPECT_FALSE(R.Trapped);
  EXPECT_TRUE(interpret(Mc.Optimized, {8, 0, 2}).Trapped);
}

TEST(McSsaPre, Figure7WillBeAvailMatchesManualInserts) {
  // Lemma 8: WillBeAvail == full availability after insertions. Check on
  // a diamond by setting inserts by hand.
  Function F = parseFunctionOrDie(R"(
    func f(a, b, p) {
    entry:
      br p, t, e
    t:
      x = a + b
      print x
      jmp j
    e:
      print 0
      jmp j
    j:
      z = a + b
      ret z
    }
  )");
  prepareFunction(F);
  constructSsa(F);
  Cfg C(F);
  DomTree DT = DomTree::buildDominators(C);
  ExprKey K;
  K.Op = Opcode::Add;
  K.L.Var = F.findVar("a");
  K.R.Var = F.findVar("b");
  Frg G(F, C, DT, K);
  ASSERT_EQ(G.phis().size(), 1u);
  PhiOcc &P = G.phis()[0];

  // No inserts: the ⊥ operand keeps the Φ unavailable.
  for (PhiOperand &Op : P.Operands)
    Op.Insert = false;
  computeWillBeAvailFromInserts(G);
  EXPECT_FALSE(P.WillBeAvail);

  // Insert at the ⊥ operand: now available.
  for (PhiOperand &Op : P.Operands)
    Op.Insert = Op.isBottom();
  computeWillBeAvailFromInserts(G);
  EXPECT_TRUE(P.WillBeAvail);
}

TEST(McSsaPre, LatestVsEarliestCutSameComputationCount) {
  // Lifetime optimality changes placement, not the computation count.
  Compiled Latest =
      compile(SkewedDiamond, PreStrategy::McSsaPre, {3, 4, 64},
              CutPlacement::Latest);
  Compiled Earliest =
      compile(SkewedDiamond, PreStrategy::McSsaPre, {3, 4, 64},
              CutPlacement::Earliest);
  EXPECT_EQ(dynComputations(Latest.Optimized, {3, 4, 64}),
            dynComputations(Earliest.Optimized, {3, 4, 64}));
}

TEST(McSsaPre, NodeFrequenciesSufficeExactly) {
  // Paper Sections 1/4: MC-SSAPRE needs only node frequencies. Giving it
  // the full edge profile must not change the result.
  Function F = parseFunctionOrDie(SkewedDiamond);
  prepareFunction(F);
  Profile Prof;
  ExecOptions EO;
  EO.CollectProfile = &Prof;
  interpret(F, {3, 4, 64}, EO);
  Profile NodeOnly = Prof.withoutEdgeFreqs();

  PreOptions PO;
  PO.Strategy = PreStrategy::McSsaPre;
  PO.Prof = &Prof;
  Function WithEdges = compileWithPre(F, PO);
  PO.Prof = &NodeOnly;
  Function WithNodes = compileWithPre(F, PO);
  EXPECT_EQ(printFunction(WithEdges), printFunction(WithNodes));
}

TEST(McSsaPre, ForeignPhiArgumentBlocksBogusSpeculation) {
  // Hand-written SSA where the variable phi at the join substitutes a
  // *different* variable along one edge (legal SSA; arises from copy
  // propagation). The expression value changes across that edge, so no
  // lexical insertion can cover it: PRE must not relate the downstream
  // occurrence to upstream computations through that phi (regression
  // test for a miscompile found by iterated-PRE fuzzing).
  Function F = parseFunctionOrDie(R"(
    func f(a, b, p) {
    entry:
      x#1 = a#1 + 0
      u#1 = x#1 * b#1
      print u#1
      br p#1, t, e
    t:
      y#1 = a#1 + 5
      jmp j
    e:
      jmp j
    j:
      x#2 = phi [t: y#1] [e: x#1]
      v#1 = x#2 * b#1
      ret v#1
    }
  )");
  ASSERT_TRUE(F.IsSSA);
  Profile Prof;
  Prof.reset(F.numBlocks(), false);
  for (auto &BF : Prof.BlockFreq)
    BF = 100;
  PreOptions PO;
  PO.Strategy = PreStrategy::McSsaPre;
  PO.Prof = &Prof;
  Function Opt = F;
  runPre(Opt, PO);
  // Semantics must hold on both paths; the t path in particular computes
  // (a+5)*b at the join, which no x-based reuse can produce.
  for (int64_t P : {0, 1}) {
    ExecResult Base = interpret(F, {7, 3, P});
    ExecResult O = interpret(Opt, {7, 3, P});
    ASSERT_TRUE(Base.sameObservableBehavior(O))
        << "p=" << P << "\n" << printFunction(Opt);
  }
}

TEST(McSsaPre, UndefinedOperandPathNeverGetsInsertion) {
  // `q` is defined only inside the loop; the expression q+b is partially
  // redundant around the back edge, but the loop-entry path has no value
  // of q at all: insertion there is blocked, so the placement must keep
  // the in-loop computation (or place it after q's definition) and never
  // reference an undefined version.
  Function F = parseFunctionOrDie(R"(
    func f(b, n) {
    entry:
      i = 0
      s = 0
      jmp h
    h:
      t = i < n
      br t, body, exit
    body:
      q = i * 3
      z = q + b
      s = s + z
      z2 = q + b
      s = s + z2
      i = i + 1
      jmp h
    exit:
      ret s
    }
  )");
  prepareFunction(F);
  Profile Prof;
  ExecOptions EO;
  EO.CollectProfile = &Prof;
  interpret(F, {4, 16}, EO);
  Profile NodeOnly = Prof.withoutEdgeFreqs();
  PreOptions PO;
  PO.Strategy = PreStrategy::McSsaPre;
  PO.Prof = &NodeOnly;
  Function Opt = compileWithPre(F, PO);
  for (int64_t N : {0, 1, 16}) {
    ExecResult Base = interpret(F, {4, N});
    ExecResult O = interpret(Opt, {4, N});
    ASSERT_TRUE(Base.sameObservableBehavior(O)) << "n=" << N;
    ASSERT_LE(O.DynamicComputations, Base.DynamicComputations);
  }
}

//===----------------------------------------------------------------------===//
// EFG edge-weight regressions (see tests/corpus/README.md)
//===----------------------------------------------------------------------===//

namespace {

/// SSA form of the critical-edge reproducer, built WITHOUT preparation so
/// the critical edge left->join stays unsplit — the one configuration
/// where a phi-operand's edge frequency and its predecessor's block
/// frequency genuinely differ.
Function criticalEdgeFunction() {
  Function F = parseFunctionOrDie(R"(
    func f(a, b, p, q) {
    entry:
      br p, left, join
    left:
      x = a + b
      print x
      br q, join, out
    out:
      print 0
      ret 0
    join:
      z = a + b
      ret z
    }
  )");
  constructSsa(F);
  return F;
}

/// Profile for criticalEdgeFunction: blocks entry=100 left=90 out=50
/// join=50; edges entry->left=90, entry->join=10, left->out=50,
/// left->join=40. The insertion point for `a + b` is the phi operand
/// along entry->join: its edge frequency is 10, but its predecessor
/// (entry) runs 100 times.
Profile criticalEdgeProfile() {
  Profile P;
  P.BlockFreq = {100, 90, 50, 50};
  P.HasEdgeFreqs = true;
  P.EdgeFreq[{0, 1}] = 90;
  P.EdgeFreq[{0, 3}] = 10;
  P.EdgeFreq[{1, 2}] = 50;
  P.EdgeFreq[{1, 3}] = 40;
  return P;
}

} // namespace

TEST(McSsaPre, PhiOperandUsesEdgeFrequencyOnUnsplitCriticalEdges) {
  Function F = criticalEdgeFunction();
  Cfg C(F);
  DomTree DT = DomTree::buildDominators(C);
  std::vector<ExprKey> Exprs = collectCandidateExprs(F);
  ASSERT_EQ(Exprs.size(), 1u);

  // With edge frequencies the insertion costs edgeFreq(entry->join) = 10,
  // cheaper than computing in place at join (freq 50).
  Profile Prof = criticalEdgeProfile();
  Frg G(F, C, DT, Exprs[0]);
  EfgStats S = computeSpeculativePlacement(G, Prof);
  ASSERT_FALSE(S.Empty);
  EXPECT_EQ(S.CutWeight, 10);
  EXPECT_EQ(S.NumInsertions, 1u);
  EXPECT_EQ(S.NumComputeInPlace, 0u);

  // Degraded to a node-only profile the weight falls back to
  // blockFreq(entry) = 100 — a sound upper bound — and the placement
  // rightly prefers computing in place at join (weight 50). The bug was
  // using blockFreq even when edge frequencies were available.
  Profile NodeOnly = Prof.withoutEdgeFreqs();
  Frg G2(F, C, DT, Exprs[0]);
  EfgStats S2 = computeSpeculativePlacement(G2, NodeOnly);
  ASSERT_FALSE(S2.Empty);
  EXPECT_EQ(S2.CutWeight, 50);
  EXPECT_EQ(S2.NumInsertions, 0u);
  EXPECT_EQ(S2.NumComputeInPlace, 1u);
}

TEST(McSsaPre, ZeroFrequencyTieBreaksTowardComputeInPlace) {
  // Cold join: both cutting the insertion edge and cutting the type-2
  // in-place edge cost 0. Latest placement must take the cut closest to
  // the sink — compute in place — which keeps the temporary's live range
  // empty (lifetime optimality under ties, paper Section 5).
  Function F = parseFunctionOrDie(R"(
    func f(a, b, p) {
    entry:
      br p, t, e
    t:
      x = a + b
      print x
      jmp j
    e:
      print 0
      jmp j
    j:
      z = a + b
      ret z
    }
  )");
  constructSsa(F);
  Cfg C(F);
  DomTree DT = DomTree::buildDominators(C);
  std::vector<ExprKey> Exprs = collectCandidateExprs(F);
  ASSERT_EQ(Exprs.size(), 1u);

  Profile Prof;
  Prof.BlockFreq = {1, 1, 0, 0}; // entry, t, e, j — the join never runs

  Frg GLate(F, C, DT, Exprs[0]);
  EfgStats Late = computeSpeculativePlacement(GLate, Prof,
                                              CutPlacement::Latest);
  ASSERT_FALSE(Late.Empty);
  EXPECT_EQ(Late.CutWeight, 0);
  EXPECT_EQ(Late.NumInsertions, 0u);
  EXPECT_EQ(Late.NumComputeInPlace, 1u);

  Frg GEarly(F, C, DT, Exprs[0]);
  EfgStats Early = computeSpeculativePlacement(GEarly, Prof,
                                               CutPlacement::Earliest);
  ASSERT_FALSE(Early.Empty);
  EXPECT_EQ(Early.CutWeight, 0);
  EXPECT_EQ(Early.NumInsertions, 1u); // same capacity, earlier placement
}

TEST(McSsaPre, HugeFrequenciesSaturateInsteadOfAliasingInfinity) {
  Function F = criticalEdgeFunction();
  Cfg C(F);
  DomTree DT = DomTree::buildDominators(C);
  std::vector<ExprKey> Exprs = collectCandidateExprs(F);
  ASSERT_EQ(Exprs.size(), 1u);

  Profile Huge;
  Huge.BlockFreq = {uint64_t(1) << 62, (uint64_t(1) << 62) - 1, 1,
                    uint64_t(1) << 62};

  Frg G(F, C, DT, Exprs[0]);
  EfgStats S = computeSpeculativePlacement(G, Huge);
  ASSERT_FALSE(S.Empty);
  EXPECT_TRUE(S.Saturated);
  EXPECT_LT(S.CutWeight, InfiniteCapacity);
  EXPECT_EQ(S.CutWeight, MaxFiniteCapacity);
}
