//===- tests/chaos_test.cpp - Crash containment and chaos harness ---------===//
//
// The robustness contracts of --isolate=process and the fault-injected
// serving stack (docs/ROBUSTNESS.md):
//
//  * a sandbox worker that segfaults is reaped, the request retried and
//    eventually quarantined — the service itself keeps serving;
//  * a worker past the request deadline is SIGKILLed, never waited on
//    forever;
//  * a worker over its memory cap dies contained, like any other crash;
//  * a bounded queue sheds with 'B' instead of growing without bound;
//  * under concurrent clients with torn frames, dropped connections and
//    worker kills, every request terminates in a bit-identical, an
//    explicitly degraded, or a quarantined outcome — never a hang,
//    never a daemon death.
//
// The fork-based tests are skipped under TSan: forking a multithreaded
// TSan process is unsupported by the runtime (the in-process tests and
// the other sanitizers still cover the logic).
//
//===----------------------------------------------------------------------===//

#include "pre/CompileService.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#if defined(__SANITIZE_THREAD__)
#define SPECPRE_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SPECPRE_TSAN 1
#endif
#endif
#ifndef SPECPRE_TSAN
#define SPECPRE_TSAN 0
#endif

#if defined(__SANITIZE_ADDRESS__)
#define SPECPRE_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define SPECPRE_SANITIZED 1
#endif
#endif
#ifndef SPECPRE_SANITIZED
#define SPECPRE_SANITIZED SPECPRE_TSAN
#endif

using namespace specpre;

namespace {

const char *TestModule = R"(func hot(a, b, n) {
entry:
  i = 0
  s = 0
  jmp loop
loop:
  c = i < n
  br c, body, done
body:
  t = a * b
  s = s + t
  i = i + 1
  jmp loop
done:
  ret s
}

func cold(a, b, n) {
entry:
  x = a + b
  ret x
}
)";

ServeRequest basicRequest() {
  ServeRequest R;
  R.ModuleText = TestModule;
  R.Strategy = PreStrategy::McSsaPre;
  R.TrainArgs = std::vector<int64_t>{3, 4, 16};
  return R;
}

/// A request whose training run burns the interpreter's full step budget
/// (50M steps, well over 100 ms of wall clock in any build type) before
/// failing: the deterministic "slow request" for deadline and
/// backpressure tests.
ServeRequest slowRequest() {
  ServeRequest R = basicRequest();
  R.TrainArgs = std::vector<int64_t>{3, 4, 2000000000LL};
  return R;
}

ServeResponse localReference(const ServeRequest &R) {
  ParallelConfig PC;
  PC.Jobs = 1;
  ParallelPreDriver Driver(PC);
  return processServeRequest(R, Driver, nullptr, nullptr);
}

std::string tempSocketPath(const char *Tag) {
  return "/tmp/sprc-" + std::to_string(getpid()) + "-" + Tag + ".sock";
}

/// Disarms injection on every exit path: a failing assertion must not
/// leave fault probes armed for the next test.
struct InjectionGuard {
  explicit InjectionGuard(const char *Spec) {
    Status St = configureFaultInjection(Spec);
    EXPECT_TRUE(St.isOk()) << St.toString();
  }
  ~InjectionGuard() { disableFaultInjection(); }
};

} // namespace

//===----------------------------------------------------------------------===//
// Worker crash containment (no socket: the service layer alone)
//===----------------------------------------------------------------------===//

#if !SPECPRE_TSAN

TEST(ChaosTest, WorkerCrashContainedAndQuarantined) {
  CompileService::Config Cfg;
  Cfg.Isolation = IsolationMode::Process;
  Cfg.QuarantineAfter = 2;
  CompileService Service(Cfg);

  ServeResponse Resp;
  {
    // Every supervisor probe fires: the worker segfaults on attempt 1,
    // again on the retry, and the request is quarantined.
    InjectionGuard Guard("worker-crash:1:5");
    Resp = Service.submit(basicRequest()).get();
  }
  EXPECT_FALSE(Resp.Ok);
  EXPECT_TRUE(Resp.Quarantined);
  EXPECT_NE(Resp.Error.find("refusing to retry"), std::string::npos)
      << Resp.Error;

  PipelineMetrics M = Service.metricsSnapshot();
  EXPECT_EQ(M.service().WorkerCrashes, 2u);
  EXPECT_EQ(M.service().Retries, 1u);
  EXPECT_EQ(M.service().Quarantined, 1u);

  // The crashes were contained: the same service still compiles.
  ServeRequest Other = basicRequest();
  Other.OnlyFunction = "cold";
  ServeResponse Alive = Service.submit(Other).get();
  EXPECT_TRUE(Alive.Ok);
  EXPECT_EQ(Alive.ExitCode, 0);
  EXPECT_EQ(Alive.StdoutText, localReference(Other).StdoutText);

  // Resubmitting the poisoned request answers from the quarantine set —
  // no new fork, no new crash.
  ServeResponse Again = Service.submit(basicRequest()).get();
  EXPECT_TRUE(Again.Quarantined);
  M = Service.metricsSnapshot();
  EXPECT_EQ(M.service().WorkerCrashes, 2u)
      << "a quarantined request was forked again";
  EXPECT_EQ(M.service().Quarantined, 2u);
}

TEST(ChaosTest, DeadlineKillContained) {
  CompileService::Config Cfg;
  Cfg.Isolation = IsolationMode::Process;
  Cfg.RequestDeadlineMs = 100;
  Cfg.QuarantineAfter = 1;
  CompileService Service(Cfg);

  ServeResponse Resp = Service.submit(slowRequest()).get();
  EXPECT_FALSE(Resp.Ok);
  EXPECT_TRUE(Resp.Quarantined);

  PipelineMetrics M = Service.metricsSnapshot();
  EXPECT_EQ(M.service().DeadlineKills, 1u);
  EXPECT_EQ(M.service().WorkerCrashes, 0u)
      << "a deadline overrun was misclassified as a crash";

  ServeResponse Alive = Service.submit(basicRequest()).get();
  EXPECT_TRUE(Alive.Ok);
  EXPECT_EQ(Alive.ExitCode, 0);
}

TEST(ChaosTest, RlimitKillContained) {
  CompileService::Config Cfg;
  Cfg.Isolation = IsolationMode::Process;
  Cfg.WorkerMemLimitMb = 8;
  Cfg.QuarantineAfter = 1;
  // Generous deadline: the point is the memory cap, not the clock.
  Cfg.RequestDeadlineMs = 30000;
  CompileService Service(Cfg);

  // ~24 MiB of payload: receiving it alone blows the 8 MiB RLIMIT_DATA
  // cap inside the worker, long before glibc's pre-mapped arenas could
  // absorb the allocation.
  ServeRequest Big = basicRequest();
  Big.ModuleText.append(24u << 20, 'x');
  ServeResponse Resp = Service.submit(Big).get();
  EXPECT_FALSE(Resp.Ok);
  EXPECT_TRUE(Resp.Quarantined);

  PipelineMetrics M = Service.metricsSnapshot();
  EXPECT_GE(M.service().WorkerCrashes + M.service().DeadlineKills, 1u);

  ServeResponse Alive = Service.submit(basicRequest()).get();
  EXPECT_TRUE(Alive.Ok);
  EXPECT_EQ(Alive.ExitCode, 0);
}

#endif // !SPECPRE_TSAN

//===----------------------------------------------------------------------===//
// Backpressure
//===----------------------------------------------------------------------===//

TEST(ChaosTest, BusyFrameShedsAtDepthOneQueue) {
  CompileService::Config Cfg;
  Cfg.RequestWorkers = 1;
  Cfg.QueueMaxDepth = 1;
  CompileService Service(Cfg);

  // #1 occupies the single worker for >100 ms; #2 fills the depth-1
  // queue; #3 must shed. The lone worker can hold at most one request,
  // so the queue is deterministically non-empty at the third submit.
  std::future<ServeResponse> First = Service.submit(slowRequest());
  std::future<ServeResponse> Second = Service.submit(basicRequest());
  std::future<ServeResponse> Third;
  EXPECT_FALSE(Service.trySubmit(basicRequest(), Third))
      << "a full bounded queue accepted a request";
  EXPECT_FALSE(Third.valid());

  // The shed is counted, and the accepted requests still complete.
  First.get();
  ServeResponse R2 = Second.get();
  EXPECT_TRUE(R2.Ok);
  EXPECT_EQ(R2.ExitCode, 0);
  PipelineMetrics M = Service.metricsSnapshot();
  EXPECT_EQ(M.service().Shed, 1u);
  EXPECT_EQ(M.service().RequestsReceived, 3u)
      << "shed requests must still count as received";
}

//===----------------------------------------------------------------------===//
// Concurrent chaos sweep over the socket server
//===----------------------------------------------------------------------===//

#if !SPECPRE_TSAN

namespace {

/// Terminal outcomes a chaos-mode client accepts. Anything else within
/// the attempt budget is a test failure.
enum class Outcome { Match, Degraded, Quarantined, Unresolved };

/// One request against a fault-injected daemon, retried with reconnects
/// until a terminal outcome. Mirrors specpre-opt's --retries loop, minus
/// the backoff (the test wants pressure, not politeness).
Outcome chaseRequest(const std::string &SocketPath, const ServeRequest &Req,
                     const std::string &RefStdout, int MaxAttempts) {
  const std::string Encoded = encodeServeRequest(Req);
  for (int A = 0; A != MaxAttempts; ++A) {
    Expected<Socket> Conn = connectUnix(SocketPath, 5000);
    if (!Conn)
      continue;
    if (!writeFrame(*Conn, 'C', Encoded, 10000))
      continue; // injected write fault or torn pipe: reconnect
    Frame F;
    bool PeerClosed = false;
    if (!readFrame(*Conn, F, PeerClosed, 30000) || PeerClosed)
      continue;
    if (F.Type == 'B')
      continue; // shed under load: try again
    if (F.Type == 'E') {
      if (F.Payload.rfind("frame-error: ", 0) == 0)
        continue; // our frame arrived torn
      if (F.Payload.rfind("quarantined: ", 0) == 0)
        return Outcome::Quarantined;
      ADD_FAILURE() << "unexpected terminal error: " << F.Payload;
      return Outcome::Unresolved;
    }
    if (F.Type != 'R')
      continue;
    ServeResponse Resp;
    std::string Error;
    if (!decodeServeResponse(F.Payload, Resp, Error))
      continue; // response torn in transit
    if (!Resp.Ok)
      return Outcome::Unresolved;
    if (Resp.Degraded)
      return Outcome::Degraded;
    if (Resp.StdoutText == RefStdout)
      return Outcome::Match;
    ADD_FAILURE() << "non-degraded response diverged from local run";
    return Outcome::Unresolved;
  }
  return Outcome::Unresolved;
}

} // namespace

TEST(ChaosTest, ConcurrentChaosSweep) {
  // The suite: option surfaces that produce distinct outputs, so a
  // misrouted response would be caught by the bit-identity check.
  std::vector<ServeRequest> Suite;
  {
    ServeRequest R = basicRequest();
    Suite.push_back(R);
    R.Strategy = PreStrategy::SsaPre;
    Suite.push_back(R);
    R = basicRequest();
    R.Placement = CutPlacement::Earliest;
    R.Objective = CutObjective::size();
    Suite.push_back(R);
    R = basicRequest();
    R.Cleanup = true;
    R.Gvn = true;
    R.OutOfSsa = true;
    Suite.push_back(R);
    R = basicRequest();
    R.OnlyFunction = "cold";
    Suite.push_back(R);
    R = basicRequest();
    R.Strategy = PreStrategy::Lcm;
    R.TrainArgs.reset();
    Suite.push_back(R);
  }
#if SPECPRE_SANITIZED
  Suite.resize(3); // sanitizer builds: fewer requests, same machinery
#endif
  std::vector<std::string> Refs;
  for (const ServeRequest &R : Suite) {
    ServeResponse Ref = localReference(R);
    ASSERT_TRUE(Ref.Ok);
    ASSERT_EQ(Ref.ExitCode, 0) << Ref.StderrText;
    Refs.push_back(Ref.StdoutText);
  }

  namespace fs = std::filesystem;
  fs::path CacheDir = fs::temp_directory_path() / "specpre-chaos-sweep-cache";
  fs::remove_all(CacheDir);

  ServeServer::Config Cfg;
  Cfg.SocketPath = tempSocketPath("sweep");
  Cfg.IoTimeoutMs = 10000;
  Cfg.Service.RequestWorkers = 4;
  Cfg.Service.Isolation = IsolationMode::Process;
  Cfg.Service.QuarantineAfter = 3;
  Cfg.Service.CacheDir = CacheDir.string();
  ServeServer Server(Cfg);
  ASSERT_TRUE(Server.start().isOk());

  std::atomic<int> Matched{0}, DegradedN{0}, QuarantinedN{0}, Failed{0};
  {
    // Every write (client *and* server side) flips coins for torn
    // frames, partial writes, stalls and drops; every fork flips for
    // kills and crashes; every cache publish and read flips for torn,
    // rotten and failed disk I/O. 5% per site, as the contract demands.
    InjectionGuard Guard("torn-frame:0.05:21,partial-write:0.05:22,"
                         "delayed-write:0.05:23,dropped-connection:0.05:24,"
                         "worker-kill:0.05:25,worker-crash:0.05:26,"
                         "disk-short-write:0.05:27,disk-enospc:0.05:28,"
                         "disk-eio:0.05:29,disk-corrupt-byte:0.05:30,"
                         "disk-rename-fail:0.05:31");
    auto Client = [&](unsigned Shift) {
      for (unsigned I = 0; I != Suite.size(); ++I) {
        unsigned K = (I + Shift) % Suite.size();
        switch (chaseRequest(Cfg.SocketPath, Suite[K], Refs[K], 40)) {
        case Outcome::Match:
          Matched.fetch_add(1);
          break;
        case Outcome::Degraded:
          DegradedN.fetch_add(1);
          break;
        case Outcome::Quarantined:
          QuarantinedN.fetch_add(1);
          break;
        case Outcome::Unresolved:
          Failed.fetch_add(1);
          break;
        }
      }
    };
    std::vector<std::thread> Clients;
    for (unsigned C = 0; C != 4; ++C)
      Clients.emplace_back(Client, C);
    for (std::thread &T : Clients)
      T.join();
  }

  EXPECT_EQ(Failed.load(), 0) << "requests failed to reach a terminal "
                                 "outcome within the attempt budget";
  EXPECT_EQ(Matched.load() + DegradedN.load() + QuarantinedN.load(),
            static_cast<int>(4 * Suite.size()));
  EXPECT_GT(Matched.load(), 0);

  // Injection is disarmed; the daemon must still be fully alive, and its
  // metrics must expose the new robustness counters.
  ServeResponse Final;
  {
    Expected<Socket> Conn = connectUnix(Cfg.SocketPath, 5000);
    ASSERT_TRUE(Conn.hasValue()) << Conn.status().toString();
    ASSERT_TRUE(
        writeFrame(*Conn, 'C', encodeServeRequest(Suite[0]), 10000).isOk());
    Frame F;
    bool PeerClosed = false;
    ASSERT_TRUE(readFrame(*Conn, F, PeerClosed, 30000).isOk());
    ASSERT_FALSE(PeerClosed);
    ASSERT_EQ(F.Type, 'R') << F.Payload;
    std::string Error;
    ASSERT_TRUE(decodeServeResponse(F.Payload, Final, Error)) << Error;
    EXPECT_EQ(Final.StdoutText, Refs[0]);

    ASSERT_TRUE(writeFrame(*Conn, 'S', "", 5000).isOk());
    ASSERT_TRUE(readFrame(*Conn, F, PeerClosed, 5000).isOk());
    ASSERT_EQ(F.Type, 'T');
    for (const char *Key : {"\"worker_crashes\"", "\"deadline_kills\"",
                            "\"quarantined\"", "\"shed\"", "\"retries\"",
                            "\"corrupt_dropped\"", "\"breaker_opens\"",
                            "\"breaker_state\""})
      EXPECT_NE(F.Payload.find(Key), std::string::npos)
          << "stats JSON lacks " << Key << ": " << F.Payload;
  }

  Server.stop();
  ::unlink(Cfg.SocketPath.c_str());
  fs::remove_all(CacheDir);
}

TEST(ChaosTest, DiskStormNeverServesCorruptBytes) {
  // All five disk sites at a brutal 20%, nothing else armed: compile
  // outcomes stay input-pure, so a faulting cache may only ever cost a
  // recompile. Every response — cold and warm, while entries are being
  // torn, rotted and refused around it — must be bit-identical. A single
  // Degraded or Quarantined outcome here is a bug.
  std::vector<ServeRequest> Suite;
  {
    ServeRequest R = basicRequest();
    Suite.push_back(R);
    R.Strategy = PreStrategy::SsaPre;
    Suite.push_back(R);
    R = basicRequest();
    R.Placement = CutPlacement::Earliest;
    Suite.push_back(R);
  }
  std::vector<std::string> Refs;
  for (const ServeRequest &R : Suite) {
    ServeResponse Ref = localReference(R);
    ASSERT_TRUE(Ref.Ok);
    Refs.push_back(Ref.StdoutText);
  }

  namespace fs = std::filesystem;
  fs::path CacheDir = fs::temp_directory_path() / "specpre-chaos-storm-cache";
  fs::remove_all(CacheDir);

  ServeServer::Config Cfg;
  Cfg.SocketPath = tempSocketPath("storm");
  Cfg.IoTimeoutMs = 10000;
  Cfg.Service.RequestWorkers = 2;
  Cfg.Service.CacheDir = CacheDir.string();
  // A tight breaker so the storm demonstrably trips and heals it.
  Cfg.Service.CacheBreakerThreshold = 2;
  Cfg.Service.CacheBreakerCooldownMs = 50;
  Cfg.Service.CacheScrubIntervalMs = 100; // scrub concurrently with load
  ServeServer Server(Cfg);
  ASSERT_TRUE(Server.start().isOk());

  {
    InjectionGuard Guard("disk-short-write:0.2:41,disk-enospc:0.2:42,"
                         "disk-eio:0.2:43,disk-corrupt-byte:0.2:44,"
                         "disk-rename-fail:0.2:45");
    for (unsigned Round = 0; Round != 6; ++Round)
      for (unsigned I = 0; I != Suite.size(); ++I)
        EXPECT_EQ(chaseRequest(Cfg.SocketPath, Suite[I], Refs[I], 10),
                  Outcome::Match)
            << "round " << Round << " request " << I;
  }

  // The storm has passed: the daemon is alive and its counters show the
  // cache took the damage, not the responses.
  {
    Expected<Socket> Conn = connectUnix(Cfg.SocketPath, 5000);
    ASSERT_TRUE(Conn.hasValue()) << Conn.status().toString();
    ASSERT_TRUE(writeFrame(*Conn, 'S', "", 5000).isOk());
    Frame F;
    bool PeerClosed = false;
    ASSERT_TRUE(readFrame(*Conn, F, PeerClosed, 5000).isOk());
    ASSERT_EQ(F.Type, 'T');
    for (const char *Key :
         {"\"corrupt_dropped\"", "\"disk_io_errors\"", "\"breaker_opens\"",
          "\"scrub_scanned\"", "\"scrub_quarantined\""})
      EXPECT_NE(F.Payload.find(Key), std::string::npos)
          << "stats JSON lacks " << Key << ": " << F.Payload;
  }

  Server.stop();
  ::unlink(Cfg.SocketPath.c_str());
  fs::remove_all(CacheDir);
}

#endif // !SPECPRE_TSAN
