//===- tests/fatal_paths_test.cpp - Abort-path coverage ---------------------------===//
//
// The library treats programmatic errors as fatal (abort with a
// message); these death tests pin down that the guards actually fire.
// Input-dependent failures are recoverable (StatusException) and are
// pinned here too.
//
//===----------------------------------------------------------------------===//

#include "analysis/CriticalEdges.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "ssa/SsaConstruction.h"
#include "ssa/SsaDestruction.h"
#include "support/Status.h"

#include <gtest/gtest.h>

using namespace specpre;

TEST(FatalPaths, ParseFunctionOrDieAborts) {
  EXPECT_DEATH(parseFunctionOrDie("func broken( {"), "parse failed");
}

TEST(FatalPaths, InterpretArgumentMismatchAborts) {
  Function F = parseFunctionOrDie(R"(
    func f(a, b) {
    entry:
      ret a
    }
  )");
  EXPECT_DEATH(interpret(F, {1}), "argument count mismatch");
}

TEST(FatalPaths, SsaConstructionRejectsUseBeforeDef) {
  Function F = parseFunctionOrDie(R"(
    func f(p) {
    entry:
      x = never_assigned + 1
      ret x
    }
  )");
  // Use-before-def is a property of the *input*, not of the library, so
  // it surfaces as a recoverable error rather than an abort.
  try {
    constructSsa(F);
    FAIL() << "expected StatusException";
  } catch (const StatusException &E) {
    EXPECT_EQ(E.status().code(), ErrorCode::InvalidInput);
    EXPECT_NE(E.status().message().find("undefined variable"),
              std::string::npos)
        << E.status().message();
  }
}

TEST(FatalPaths, DestructSsaRequiresSplitEdges) {
  // A critical edge into a phi block: destructSsa must refuse.
  Function F = parseFunctionOrDie(R"(
    func f(p) {
    entry:
      br p#1, t, j
    t:
      x#1 = p#1 + 1
      jmp j
    j:
      x#2 = phi [entry: p#1] [t: x#1]
      ret x#2
    }
  )");
  ASSERT_TRUE(F.IsSSA);
  EXPECT_DEATH(destructSsa(F), "critical edge");
}
