//===- tests/pipeline_property_test.cpp - End-to-end PRE properties -------------===//
//
// Property battery over randomly generated programs: for every strategy,
// the transformed program must (a) verify, (b) behave observationally
// identically on multiple inputs, and (c) never compute more than the
// original on the profiled input (for profile-guided strategies) or on
// every input (for safe SSAPRE).
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "pre/PreDriver.h"
#include "profile/Profile.h"
#include "support/Random.h"
#include "workload/ProgramGenerator.h"

#include <gtest/gtest.h>

using namespace specpre;

namespace {

struct Case {
  uint64_t Seed;
  bool AllowDiv;
  unsigned MaxDepth;
};

class PipelineProperty : public ::testing::TestWithParam<Case> {};

std::vector<int64_t> argsFor(const Function &F, uint64_t Seed, int Variant) {
  std::vector<int64_t> Args;
  for (unsigned P = 0; P != F.Params.size(); ++P)
    Args.push_back(static_cast<int64_t>(Seed * 131 + Variant * 977 + P * 31));
  return Args;
}

} // namespace

TEST_P(PipelineProperty, AllStrategiesPreserveSemantics) {
  const Case &C = GetParam();
  GeneratorConfig Cfg0;
  Cfg0.AllowDiv = C.AllowDiv;
  Cfg0.MaxDepth = C.MaxDepth;
  Function Prepared = generateProgram(C.Seed, Cfg0);
  prepareFunction(Prepared);
  verifyFunctionOrDie(Prepared, "prepared");

  // Profile from the training input (variant 0).
  Profile Prof;
  {
    ExecOptions EO;
    EO.CollectProfile = &Prof;
    ExecResult Train = interpret(Prepared, argsFor(Prepared, C.Seed, 0), EO);
    ASSERT_FALSE(Train.TimedOut);
    ASSERT_FALSE(Train.Trapped);
  }
  Profile NodeOnly = Prof.withoutEdgeFreqs();

  for (PreStrategy Strategy :
       {PreStrategy::SsaPre, PreStrategy::SsaPreSpec, PreStrategy::McSsaPre,
        PreStrategy::McPre}) {
    PreOptions PO;
    PO.Strategy = Strategy;
    PO.Prof = Strategy == PreStrategy::McPre ? &Prof : &NodeOnly;
    PO.Verify = true; // aborts on verifier/Definition-1 violations
    Function Optimized = compileWithPre(Prepared, PO);

    for (int Variant = 0; Variant != 4; ++Variant) {
      std::vector<int64_t> Args = argsFor(Prepared, C.Seed, Variant);
      ExecResult Base = interpret(Prepared, Args);
      ExecResult Opt = interpret(Optimized, Args);
      ASSERT_TRUE(Base.sameObservableBehavior(Opt))
          << "strategy " << strategyName(Strategy) << " seed " << C.Seed
          << " variant " << Variant << "\n"
          << printFunction(Optimized);
      // Safe SSAPRE must never slow any input down (safety property).
      if (Strategy == PreStrategy::SsaPre) {
        ASSERT_LE(Opt.DynamicComputations, Base.DynamicComputations)
            << "SSAPRE increased computations, seed " << C.Seed;
      }
      // Profile-guided speculation must win (or tie) on the exact input
      // it was trained on.
      if (Variant == 0 && (Strategy == PreStrategy::McSsaPre ||
                           Strategy == PreStrategy::McPre)) {
        ASSERT_LE(Opt.DynamicComputations, Base.DynamicComputations)
            << strategyName(Strategy) << " lost on its own training input, "
            << "seed " << C.Seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, PipelineProperty, [] {
  std::vector<Case> Cases;
  for (uint64_t Seed = 1; Seed <= 40; ++Seed)
    Cases.push_back(
        Case{Seed * 7919 + 13, Seed % 3 == 0, 2 + unsigned(Seed % 3)});
  return ::testing::ValuesIn(Cases);
}());

TEST(PipelineDeterminism, SameSeedSameResult) {
  GeneratorConfig Cfg0;
  Function A = generateProgram(4242, Cfg0);
  Function B = generateProgram(4242, Cfg0);
  EXPECT_EQ(printFunction(A), printFunction(B));
  prepareFunction(A);
  prepareFunction(B);
  Profile Prof;
  ExecOptions EO;
  EO.CollectProfile = &Prof;
  interpret(A, argsFor(A, 4242, 0), EO);
  PreOptions PO;
  PO.Strategy = PreStrategy::McSsaPre;
  PO.Prof = &Prof;
  Function OA = compileWithPre(A, PO);
  Function OB = compileWithPre(B, PO);
  EXPECT_EQ(printFunction(OA), printFunction(OB));
}

TEST(ProfileRobustness, GarbageProfilesNeverBreakCorrectness) {
  // Correctness (Definition 1) must not depend on profile fidelity: feed
  // the speculative strategies adversarial profiles — zeros, uniform
  // junk, random values, wildly scaled — and require observational
  // equivalence on several inputs. Only optimality may degrade.
  Rng R(0xFEED);
  for (uint64_t Seed = 50; Seed <= 62; ++Seed) {
    GeneratorConfig Cfg0;
    Cfg0.AllowDiv = Seed % 2 == 0;
    Function Prepared = generateProgram(Seed * 1031, Cfg0);
    prepareFunction(Prepared);

    for (int Kind = 0; Kind != 4; ++Kind) {
      Profile Prof;
      Prof.reset(Prepared.numBlocks(), false);
      switch (Kind) {
      case 0: // all zero
        break;
      case 1: // uniform
        for (auto &BF : Prof.BlockFreq)
          BF = 1000;
        break;
      case 2: // random junk
        for (auto &BF : Prof.BlockFreq)
          BF = R.nextBelow(1u << 20);
        break;
      case 3: // extreme skew
        for (unsigned B = 0; B != Prof.BlockFreq.size(); ++B)
          Prof.BlockFreq[B] = (B % 3 == 0) ? 0 : (uint64_t(1) << 40);
        break;
      }
      for (PreStrategy Strategy :
           {PreStrategy::McSsaPre, PreStrategy::McPre}) {
        PreOptions PO;
        PO.Strategy = Strategy;
        Profile EdgeProf = Prof.withEstimatedEdgeFreqs(Prepared);
        PO.Prof = Strategy == PreStrategy::McPre ? &EdgeProf : &Prof;
        Function Opt = compileWithPre(Prepared, PO);
        for (int V = 0; V != 3; ++V) {
          std::vector<int64_t> Args(Prepared.Params.size(),
                                    static_cast<int64_t>(Seed * 7 + V));
          ExecResult Base = interpret(Prepared, Args);
          ExecResult O = interpret(Opt, Args);
          ASSERT_TRUE(Base.sameObservableBehavior(O))
              << strategyName(Strategy) << " kind " << Kind << " seed "
              << Seed;
        }
      }
    }
  }
}

TEST(ProfileRobustness, TruncatedProfileIsTolerated) {
  // A profile shorter than the block count (stale FDO data after the
  // function grew) reads as zero frequencies for the missing blocks.
  GeneratorConfig Cfg0;
  Function Prepared = generateProgram(31337, Cfg0);
  prepareFunction(Prepared);
  Profile Prof;
  Prof.reset(Prepared.numBlocks() / 2, false);
  for (auto &BF : Prof.BlockFreq)
    BF = 5;
  PreOptions PO;
  PO.Strategy = PreStrategy::McSsaPre;
  PO.Prof = &Prof;
  Function Opt = compileWithPre(Prepared, PO);
  std::vector<int64_t> Args(Prepared.Params.size(), 3);
  EXPECT_TRUE(interpret(Prepared, Args)
                  .sameObservableBehavior(interpret(Opt, Args)));
}
