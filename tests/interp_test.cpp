//===- tests/interp_test.cpp - Interpreter tests --------------------------------===//

#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "ssa/SsaConstruction.h"

#include <gtest/gtest.h>

using namespace specpre;

TEST(Interp, StraightLineArithmetic) {
  Function F = parseFunctionOrDie(R"(
    func f(a, b) {
    entry:
      x = a * b + 2
      ret x
    }
  )");
  ExecResult R = interpret(F, {3, 4});
  EXPECT_EQ(R.ReturnValue, 14);
  EXPECT_FALSE(R.Trapped);
  EXPECT_EQ(R.DynamicComputations, 2u); // mul and add
}

TEST(Interp, BranchesAndPrints) {
  Function F = parseFunctionOrDie(R"(
    func f(p) {
    entry:
      br p > 0, pos, neg
    pos:
      print 1
      jmp done
    neg:
      print 2
      jmp done
    done:
      ret p
    }
  )");
  ExecResult Pos = interpret(F, {5});
  EXPECT_EQ(Pos.Output, (std::vector<int64_t>{1}));
  ExecResult Neg = interpret(F, {-5});
  EXPECT_EQ(Neg.Output, (std::vector<int64_t>{2}));
  EXPECT_FALSE(Pos.sameObservableBehavior(Neg));
}

TEST(Interp, LoopComputesSum) {
  Function F = parseFunctionOrDie(R"(
    func sum(n) {
    entry:
      i = 0
      s = 0
      jmp h
    h:
      t = i < n
      br t, body, exit
    body:
      s = s + i
      i = i + 1
      jmp h
    exit:
      ret s
    }
  )");
  EXPECT_EQ(interpret(F, {5}).ReturnValue, 10);
  EXPECT_EQ(interpret(F, {0}).ReturnValue, 0);
  EXPECT_EQ(interpret(F, {100}).ReturnValue, 4950);
}

TEST(Interp, SsaPhiSemantics) {
  Function F = parseFunctionOrDie(R"(
    func sum(n) {
    entry:
      i = 0
      s = 0
      jmp h
    h:
      t = i < n
      br t, body, exit
    body:
      s = s + i
      i = i + 1
      jmp h
    exit:
      ret s
    }
  )");
  Function S = F;
  constructSsa(S);
  for (int64_t N : {0, 1, 5, 33})
    EXPECT_EQ(interpret(S, {N}).ReturnValue, interpret(F, {N}).ReturnValue);
}

TEST(Interp, ParallelPhiSwap) {
  // Classic swap via parallel phis: a,b = b,a each iteration.
  Function F = parseFunctionOrDie(R"(
    func swap(n) {
    entry:
      jmp h
    h:
      a#1 = phi [entry: 1] [body: b#1]
      b#1 = phi [entry: 2] [body: a#1]
      i#1 = phi [entry: 0] [body: i#2]
      t#1 = i#1 < n#1
      br t#1, body, exit
    body:
      i#2 = i#1 + 1
      jmp h
    exit:
      u#1 = a#1 * 10
      r#1 = u#1 + b#1
      ret r#1
    }
  )");
  // After an even number of swaps a=1,b=2; odd a=2,b=1.
  EXPECT_EQ(interpret(F, {0}).ReturnValue, 12);
  EXPECT_EQ(interpret(F, {1}).ReturnValue, 21);
  EXPECT_EQ(interpret(F, {2}).ReturnValue, 12);
}

TEST(Interp, DivisionTrap) {
  Function F = parseFunctionOrDie(R"(
    func f(a, b) {
    entry:
      x = a / b
      ret x
    }
  )");
  EXPECT_EQ(interpret(F, {12, 4}).ReturnValue, 3);
  ExecResult R = interpret(F, {12, 0});
  EXPECT_TRUE(R.Trapped);
}

TEST(Interp, TimeoutOnInfiniteLoop) {
  Function F = parseFunctionOrDie(R"(
    func f(a) {
    entry:
      jmp spin
    spin:
      a = a + 1
      jmp spin
    }
  )");
  ExecOptions EO;
  EO.MaxSteps = 1000;
  ExecResult R = interpret(F, {0}, EO);
  EXPECT_TRUE(R.TimedOut);
}

TEST(Interp, CostModelAccounting) {
  Function F = parseFunctionOrDie(R"(
    func f(a) {
    entry:
      x = a * a
      y = x + 1
      ret y
    }
  )");
  ExecOptions EO;
  EO.Costs = CostModel::standard();
  ExecResult R = interpret(F, {3});
  // mul=4, add=1, ret=1.
  EXPECT_EQ(R.Cycles, 6u);

  EO.Costs = CostModel::computationsOnly();
  ExecResult R2 = interpret(F, {3}, EO);
  EXPECT_EQ(R2.Cycles, 2u);
  EXPECT_EQ(R2.Cycles, R2.DynamicComputations);
}

TEST(Interp, NonSsaUndefinedReadsAreZero) {
  Function F = parseFunctionOrDie(R"(
    func f(p) {
    entry:
      br p, use, def
    use:
      y = x + 5
      ret y
    def:
      x = 1
      ret x
    }
  )");
  // Along `use`, x was never assigned: deterministic 0.
  EXPECT_EQ(interpret(F, {1}).ReturnValue, 5);
  EXPECT_EQ(interpret(F, {0}).ReturnValue, 1);
}
