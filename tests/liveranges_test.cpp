//===- tests/liveranges_test.cpp - Live-range analysis tests ---------------------===//

#include "analysis/LiveRanges.h"
#include "ir/Parser.h"
#include "ssa/SsaConstruction.h"

#include <gtest/gtest.h>

using namespace specpre;

namespace {

Function ssaOf(const char *Src) {
  Function F = parseFunctionOrDie(Src);
  constructSsa(F);
  return F;
}

} // namespace

TEST(LiveRanges, StraightLineExtents) {
  Function F = ssaOf(R"(
    func f(a) {
    entry:
      x = a + 1
      y = x + 2
      z = y + 3
      ret z
    }
  )");
  LiveRanges LR(F);
  VarId X = F.findVar("x"), Y = F.findVar("y"), Z = F.findVar("z");
  // x: defined at 0, last use at 1 -> 1 slot. Same for y and z.
  EXPECT_EQ(LR.liveSlots(X, 1), 1u);
  EXPECT_EQ(LR.liveSlots(Y, 1), 1u);
  EXPECT_EQ(LR.liveSlots(Z, 1), 1u);
  // a: param, used at stmt 0: live slots = 1 (position 0).
  EXPECT_EQ(LR.liveSlots(F.findVar("a"), 1), 1u);
}

TEST(LiveRanges, GapBetweenDefAndUseCounts) {
  Function F = ssaOf(R"(
    func f(a) {
    entry:
      x = a + 1
      u1 = a + 2
      u2 = a + 3
      y = x + 4
      ret y
    }
  )");
  LiveRanges LR(F);
  // x is live across the two unrelated statements: def at 0, use at 3.
  EXPECT_EQ(LR.liveSlots(F.findVar("x"), 1), 3u);
}

TEST(LiveRanges, AcrossBlocksAndBranches) {
  Function F = ssaOf(R"(
    func f(a, p) {
    entry:
      x = a * 2
      br p, t, e
    t:
      print 1
      jmp j
    e:
      print 2
      jmp j
    j:
      ret x
    }
  )");
  LiveRanges LR(F);
  VarId X = F.findVar("x");
  // x is live out of entry, through both arms, into j.
  EXPECT_TRUE(LR.liveIn(3, X, 1));
  EXPECT_TRUE(LR.liveIn(1, X, 1));
  EXPECT_TRUE(LR.liveIn(2, X, 1));
  // Pressure counting only x: 1.
  EXPECT_EQ(LR.maxPressure([&](VarId V) { return V == X; }), 1u);
}

TEST(LiveRanges, PhiArgumentLiveAtPredEnd) {
  Function F = ssaOf(R"(
    func f(p) {
    entry:
      br p, t, e
    t:
      x = p + 1
      print 0
      jmp j
    e:
      x = p + 2
      jmp j
    j:
      ret x
    }
  )");
  LiveRanges LR(F);
  VarId X = F.findVar("x");
  // x#1 (from t) is live to the end of t but not into e or j (the phi
  // takes over at j).
  EXPECT_FALSE(LR.liveIn(3, X, 1));
  EXPECT_FALSE(LR.liveIn(2, X, 1));
  // The merged version is live only inside j.
  EXPECT_GE(LR.liveSlots(X, 3), 1u);
}

TEST(LiveRanges, LoopCarriedValueLiveAroundBackEdge) {
  Function F = ssaOf(R"(
    func f(n) {
    entry:
      i = 0
      jmp h
    h:
      t = i < n
      br t, body, exit
    body:
      i = i + 1
      jmp h
    exit:
      ret i
    }
  )");
  LiveRanges LR(F);
  VarId I = F.findVar("i");
  // The phi version of i at h (version 2: entry's is 1, body's is 3) is
  // live through the header and the body.
  EXPECT_TRUE(LR.liveIn(2, I, 2));
  // The body's increment result is live out of body back into h.
  EXPECT_TRUE(LR.liveIn(1, I, 3) || LR.liveSlots(I, 3) >= 1u);
}

TEST(LiveRanges, TotalAndPressure) {
  Function F = ssaOf(R"(
    func f(a) {
    entry:
      x = a + 1
      y = a + 2
      z = x + y
      ret z
    }
  )");
  LiveRanges LR(F);
  uint64_t All = LR.totalLiveSlots([](VarId) { return true; });
  EXPECT_GT(All, 0u);
  // x and y overlap at statement 1: pressure at least... pressure is
  // block-entry granularity, so within one block it is 0 for locals;
  // sanity-check the API instead.
  EXPECT_GE(LR.maxPressure([](VarId) { return true; }), 0u);
  EXPECT_EQ(LR.totalLiveSlots([](VarId) { return false; }), 0u);
}
