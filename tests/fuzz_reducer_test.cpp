//===- tests/fuzz_reducer_test.cpp - Fuzz oracle stack and reducer --------------===//

#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "pre/ExprKey.h"
#include "workload/FuzzOracles.h"
#include "workload/Reducer.h"

#include <gtest/gtest.h>

#include <fstream>

using namespace specpre;

namespace {

unsigned countStmts(const Function &F) {
  unsigned N = 0;
  for (const BasicBlock &B : F.Blocks)
    N += static_cast<unsigned>(B.Stmts.size());
  return N;
}

} // namespace

TEST(FuzzOracles, CaseDerivationIsDeterministic) {
  Function A = fuzzProgram(42, 7);
  Function B = fuzzProgram(42, 7);
  EXPECT_EQ(printFunction(A), printFunction(B));
  EXPECT_EQ(fuzzTrainArgs(A, 42, 7), fuzzTrainArgs(B, 42, 7));
  EXPECT_EQ(fuzzVariantArgs(A, 42, 7), fuzzVariantArgs(B, 42, 7));
  // Different cases differ (the generator actually varies).
  Function C = fuzzProgram(42, 8);
  EXPECT_NE(printFunction(A), printFunction(C));
}

TEST(FuzzOracles, PipelineStackPassesOnGeneratedPrograms) {
  for (uint64_t CaseIdx = 0; CaseIdx != 25; ++CaseIdx) {
    Function F = fuzzProgram(5, CaseIdx);
    std::optional<OracleFailure> Fail = checkPipelineOracles(
        F, fuzzTrainArgs(F, 5, CaseIdx), fuzzVariantArgs(F, 5, CaseIdx));
    EXPECT_FALSE(Fail.has_value())
        << "case " << CaseIdx << ": oracle '" << Fail->Oracle
        << "': " << Fail->Message;
  }
}

TEST(FuzzOracles, RandomNetworksMatchBruteForce) {
  for (uint64_t CaseIdx = 0; CaseIdx != 200; ++CaseIdx) {
    std::optional<OracleFailure> Fail = checkRandomNetworkCase(3, CaseIdx);
    EXPECT_FALSE(Fail.has_value())
        << "network " << CaseIdx << ": oracle '" << Fail->Oracle
        << "': " << Fail->Message;
  }
}

TEST(FuzzOracles, SemanticOracleCatchesAMiscompile) {
  // A deliberately wrong "profile" cannot break semantics, but a wrong
  // branch target can: flipping the branch reverses the prints, and the
  // pipeline oracle run on the flipped function against the original
  // arguments must of course pass (the flipped function is simply a
  // different program). The oracle we exercise here is the reproducer
  // round trip instead: a formatted pipeline case replays cleanly.
  Function F = fuzzProgram(9, 1);
  std::vector<int64_t> Args = fuzzTrainArgs(F, 9, 1);
  OracleFailure Dummy{"ordering", "synthetic"};
  std::string Text = formatPipelineReproducer(F, Args, Dummy);
  std::string Path = testing::TempDir() + "/roundtrip.ir";
  {
    std::ofstream Out(Path);
    Out << Text;
  }
  std::optional<OracleFailure> Fail = replayCorpusFile(Path);
  EXPECT_FALSE(Fail.has_value())
      << "oracle '" << Fail->Oracle << "': " << Fail->Message;
}

TEST(FuzzOracles, FlowConservationOracleTripsOnBrokenProfile) {
  // Stored-profile oracles must reject a profile too small for the
  // function rather than misattribute frequencies.
  Function F = parseFunctionOrDie(R"(
    func f(a, b) {
    entry:
      x = a + b
      ret x
    }
  )");
  Profile Tiny; // covers zero blocks
  std::optional<OracleFailure> Fail =
      checkStoredProfileOracles(F, Tiny, {{1, 2}});
  ASSERT_TRUE(Fail.has_value());
  EXPECT_EQ(Fail->Oracle, "corpus");
}

TEST(Reducer, ShrinksToThePredicateCore) {
  // The predicate keeps only "some block still computes a * b". The
  // reducer must strip the surrounding control flow and arithmetic down
  // to (nearly) just that statement.
  Function F = parseFunctionOrDie(R"(
    func f(a, b, p) {
    entry:
      u = a + b
      v = u + 1
      br p, left, right
    left:
      w = a * b
      print w
      jmp join
    right:
      t = a - b
      print t
      jmp join
    join:
      s = a + 7
      ret s
    }
  )");
  ExprKey Mul;
  Mul.Op = Opcode::Mul;
  Mul.L.Var = F.findVar("a");
  Mul.R.Var = F.findVar("b");
  auto HasMul = [Mul](const Function &Cand) {
    for (const BasicBlock &B : Cand.Blocks)
      for (const Stmt &S : B.Stmts)
        if (Mul.matches(S))
          return true;
    return false;
  };
  ASSERT_TRUE(HasMul(F));
  Function Reduced = reduceFunction(F, HasMul);
  EXPECT_TRUE(HasMul(Reduced));
  EXPECT_LT(countStmts(Reduced), countStmts(F));
  // The branch collapses onto the left path and the right path dies.
  EXPECT_LE(Reduced.numBlocks(), 3u);
  // Statements the predicate does not need are gone.
  unsigned Computes = 0;
  for (const BasicBlock &B : Reduced.Blocks)
    for (const Stmt &S : B.Stmts)
      Computes += S.Kind == StmtKind::Compute;
  EXPECT_EQ(Computes, 1u);
}

TEST(Reducer, RespectsTheProbeBudget) {
  Function F = fuzzProgram(13, 2);
  unsigned Probes = 0;
  auto Predicate = [&Probes](const Function &) {
    ++Probes;
    return false; // nothing shrinks
  };
  Function Reduced = reduceFunction(F, Predicate, /*MaxProbes=*/10);
  EXPECT_LE(Probes, 10u);
  EXPECT_EQ(printFunction(Reduced), printFunction(F));
}
