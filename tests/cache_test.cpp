//===- tests/cache_test.cpp - Compilation-cache property tests ------------------===//
//
// End-to-end properties of the content-addressed compilation cache
// (pre/CachedCompile.h, docs/CACHING.md) over a generated corpus:
//
//  * a warm compile replays printed IR, PreStats records and ladder
//    outcomes bit-identically to the cold compile, serially and through
//    the parallel driver at any --jobs;
//  * the key is sensitive to exactly the inputs a leg consumes — node
//    frequencies for MC-SSAPRE, node+edge for MC-PRE, no profile at all
//    for the heuristic legs;
//  * unsound situations never populate the cache: degraded ladder
//    outcomes are not stored, pipeline fault injection bypasses the
//    cache entirely (disk-site injection does not — the disk sites need
//    cache traffic), and a corrupt disk entry decodes to a miss;
//  * every corruption class — truncation, bit rot, torn publishes — is
//    a clean accounted miss, the breaker opens under a sustained disk
//    fault burst and re-closes after a successful probe, and the
//    scrubber quarantines rot before a reader ever sees it;
//  * Verify mode audits hits without ever flagging a false mismatch.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ir/Printer.h"
#include "pre/CachedCompile.h"
#include "pre/ParallelDriver.h"
#include "pre/PreDriver.h"
#include "support/CompileCache.h"
#include "support/FaultInjector.h"
#include "workload/ProgramGenerator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace specpre;

namespace {

struct CorpusEntry {
  Function Prepared;
  Profile Prof;     ///< Full training profile (node + edge).
  Profile NodeOnly; ///< The MC-SSAPRE slice.
};

/// A small deterministic fuzz corpus with real training profiles.
std::vector<CorpusEntry> makeCorpus(unsigned N) {
  GeneratorConfig Cfg;
  Cfg.NumParams = 3;
  std::vector<CorpusEntry> Corpus;
  for (unsigned Seed = 1; Seed <= N; ++Seed) {
    CorpusEntry E;
    E.Prepared = generateProgram(Seed, Cfg, "gen" + std::to_string(Seed));
    prepareFunction(E.Prepared);
    ExecOptions EO;
    EO.CollectProfile = &E.Prof;
    interpret(E.Prepared, {3, 4, 5}, EO);
    E.NodeOnly = E.Prof.withoutEdgeFreqs();
    Corpus.push_back(std::move(E));
  }
  return Corpus;
}

struct CompileResult {
  std::vector<std::string> Printed;
  PreStats Stats;
};

/// One serial pass over the corpus under \p Strategy through \p Cache.
CompileResult compileSerial(const std::vector<CorpusEntry> &Corpus,
                            PreStrategy Strategy, CompileCache *Cache) {
  CompileResult R;
  for (const CorpusEntry &E : Corpus) {
    PreOptions PO;
    PO.Strategy = Strategy;
    PO.Prof = Strategy == PreStrategy::McPre ? &E.Prof : &E.NodeOnly;
    PO.Stats = &R.Stats;
    PO.Cache = Cache;
    R.Printed.push_back(printFunction(compileWithFallback(E.Prepared, PO)));
  }
  return R;
}

void expectSameResults(const CompileResult &A, const CompileResult &B,
                       const char *What) {
  ASSERT_EQ(A.Printed.size(), B.Printed.size()) << What;
  for (size_t I = 0; I != A.Printed.size(); ++I)
    EXPECT_EQ(A.Printed[I], B.Printed[I]) << What << ": function " << I;
  EXPECT_TRUE(A.Stats.records() == B.Stats.records())
      << What << ": stats records diverge";
  EXPECT_TRUE(A.Stats.outcomes() == B.Stats.outcomes())
      << What << ": outcome records diverge";
}

} // namespace

//===----------------------------------------------------------------------===//
// Warm == cold, serial and parallel
//===----------------------------------------------------------------------===//

TEST(CompileCacheTest, WarmReplayIsBitIdenticalSerially) {
  auto Corpus = makeCorpus(6);
  for (PreStrategy S : {PreStrategy::SsaPre, PreStrategy::SsaPreSpec,
                        PreStrategy::McSsaPre, PreStrategy::McPre}) {
    CompileCache Cache({});
    CompileResult Cold = compileSerial(Corpus, S, &Cache);
    CacheCounters AfterCold = Cache.counters();
    EXPECT_EQ(AfterCold.Hits, 0u);
    EXPECT_EQ(AfterCold.Misses, Corpus.size());
    EXPECT_EQ(AfterCold.Stores, Corpus.size());

    CompileResult Warm = compileSerial(Corpus, S, &Cache);
    CacheCounters AfterWarm = Cache.counters();
    EXPECT_EQ(AfterWarm.Hits, Corpus.size()) << strategyName(S);
    EXPECT_EQ(AfterWarm.Misses, Corpus.size());
    expectSameResults(Cold, Warm, strategyName(S));
  }
}

TEST(CompileCacheTest, WarmParallelMatchesColdSerialAtAnyJobs) {
  auto Corpus = makeCorpus(6);
  CompileCache Cache({});

  auto CorpusTasks = [&](CompileCache *C) {
    std::vector<CompileTask> Tasks;
    for (const CorpusEntry &E : Corpus) {
      CompileTask T;
      T.Prepared = &E.Prepared;
      T.Opts.Strategy = PreStrategy::McSsaPre;
      T.Opts.Prof = &E.NodeOnly;
      T.Opts.Cache = C;
      Tasks.push_back(T);
    }
    return Tasks;
  };

  // Cold reference: the corpus pipeline at --jobs=1, uncached.
  CompileResult Reference;
  {
    ParallelConfig PC;
    PC.Jobs = 1;
    ParallelPreDriver Driver(PC);
    for (const Function &F :
         Driver.compileCorpus(CorpusTasks(nullptr), &Reference.Stats))
      Reference.Printed.push_back(printFunction(F));
  }

  for (unsigned Jobs : {1u, 4u}) {
    for (int Round = 0; Round != 2; ++Round) { // miss round, then hit round
      ParallelConfig PC;
      PC.Jobs = Jobs;
      ParallelPreDriver Driver(PC);
      CompileResult Got;
      std::vector<Function> Out =
          Driver.compileCorpus(CorpusTasks(&Cache), &Got.Stats);
      for (const Function &F : Out)
        Got.Printed.push_back(printFunction(F));
      expectSameResults(Reference, Got,
                        Round ? "warm parallel" : "cold parallel");
    }
  }
  // 4 corpus passes through one cache: 1 miss round + 3 hit rounds.
  CacheCounters C = Cache.counters();
  EXPECT_EQ(C.Misses, Corpus.size());
  EXPECT_EQ(C.Hits, 3 * Corpus.size());
}

//===----------------------------------------------------------------------===//
// Key sensitivity: exactly the consumed inputs
//===----------------------------------------------------------------------===//

TEST(CompileCacheTest, KeyTracksTheConsumedProfileSlice) {
  auto Corpus = makeCorpus(1);
  const CorpusEntry &E = Corpus.front();
  ASSERT_TRUE(E.Prof.HasEdgeFreqs);

  auto KeyFor = [&](PreStrategy S, const Profile &P) {
    PreOptions PO;
    PO.Strategy = S;
    PO.Prof = &P;
    return compileCacheKey(E.Prepared, PO);
  };

  Profile NodeBumped = E.Prof;
  ASSERT_FALSE(NodeBumped.BlockFreq.empty());
  ++NodeBumped.BlockFreq.back();
  Profile EdgeBumped = E.Prof;
  ASSERT_FALSE(EdgeBumped.EdgeFreq.empty());
  ++EdgeBumped.EdgeFreq.begin()->second;

  // MC-SSAPRE consumes node frequencies only.
  EXPECT_NE(KeyFor(PreStrategy::McSsaPre, E.Prof),
            KeyFor(PreStrategy::McSsaPre, NodeBumped));
  EXPECT_EQ(KeyFor(PreStrategy::McSsaPre, E.Prof),
            KeyFor(PreStrategy::McSsaPre, EdgeBumped));

  // MC-PRE consumes both.
  EXPECT_NE(KeyFor(PreStrategy::McPre, E.Prof),
            KeyFor(PreStrategy::McPre, NodeBumped));
  EXPECT_NE(KeyFor(PreStrategy::McPre, E.Prof),
            KeyFor(PreStrategy::McPre, EdgeBumped));

  // The heuristic legs consume no profile at all.
  EXPECT_EQ(KeyFor(PreStrategy::SsaPre, E.Prof),
            KeyFor(PreStrategy::SsaPre, NodeBumped));
  EXPECT_EQ(KeyFor(PreStrategy::SsaPreSpec, E.Prof),
            KeyFor(PreStrategy::SsaPreSpec, EdgeBumped));

  // Distinct legs never share an address.
  EXPECT_NE(KeyFor(PreStrategy::McSsaPre, E.Prof),
            KeyFor(PreStrategy::McPre, E.Prof));
  EXPECT_NE(KeyFor(PreStrategy::SsaPre, E.Prof),
            KeyFor(PreStrategy::SsaPreSpec, E.Prof));
}

TEST(CompileCacheTest, KeyTracksIrAndOptions) {
  auto Corpus = makeCorpus(1);
  const CorpusEntry &E = Corpus.front();
  PreOptions PO;
  PO.Strategy = PreStrategy::McSsaPre;
  PO.Prof = &E.NodeOnly;
  const CacheKey Base = compileCacheKey(E.Prepared, PO);

  // Any single-token IR mutation (renaming one variable everywhere)
  // changes the address.
  Function Renamed = E.Prepared;
  Renamed.VarNames[Renamed.Params.front()] += "x";
  EXPECT_NE(compileCacheKey(Renamed, PO), Base);

  PreOptions Alt = PO;
  Alt.Placement = CutPlacement::Earliest;
  EXPECT_NE(compileCacheKey(E.Prepared, Alt), Base);

  Alt = PO;
  Alt.Budget.MaxGraphNodes = 10000;
  EXPECT_NE(compileCacheKey(E.Prepared, Alt), Base);

  Alt = PO;
  Alt.Verify = !Alt.Verify;
  EXPECT_NE(compileCacheKey(E.Prepared, Alt), Base);

  // And the key is a pure function: same inputs, same address.
  EXPECT_EQ(compileCacheKey(E.Prepared, PO), Base);
}

//===----------------------------------------------------------------------===//
// Soundness: what must never be cached
//===----------------------------------------------------------------------===//

TEST(CompileCacheTest, DegradedOutcomesAreNeverStored) {
  auto Corpus = makeCorpus(2);
  CompileCache Cache({});
  for (int Round = 0; Round != 2; ++Round) {
    for (const CorpusEntry &E : Corpus) {
      PreOptions PO;
      PO.Strategy = PreStrategy::McSsaPre;
      PO.Prof = &E.NodeOnly;
      PO.Cache = &Cache;
      // A one-node graph cap fails every analysis rung; the ladder ends
      // on a degraded rung whose shape depends on where it gave up —
      // never a sound thing to replay later.
      PO.Budget.MaxGraphNodes = 1;
      CompileOutcomeRecord Outcome;
      compileWithFallback(E.Prepared, PO, &Outcome);
      EXPECT_TRUE(Outcome.degraded());
    }
  }
  CacheCounters C = Cache.counters();
  EXPECT_EQ(C.Stores, 0u);
  EXPECT_EQ(C.Hits, 0u);
  EXPECT_EQ(C.Misses, 2 * Corpus.size());
}

TEST(CompileCacheTest, FaultInjectionBypassesTheCacheEntirely) {
  auto Corpus = makeCorpus(1);
  CompileCache Cache({});
  // Armed at rate zero: no fault ever fires, but outcomes *could* depend
  // on the global fault-site counters, so the cache must stand aside.
  ASSERT_TRUE(configureFaultInjection("min-cut:0.0:1").isOk());
  ASSERT_TRUE(faultInjectionEnabled());
  PreOptions PO;
  PO.Strategy = PreStrategy::McSsaPre;
  PO.Prof = &Corpus.front().NodeOnly;
  PO.Cache = &Cache;
  Function Opt = compileWithFallback(Corpus.front().Prepared, PO);
  disableFaultInjection();

  CacheCounters C = Cache.counters();
  EXPECT_EQ(C.Hits + C.Misses + C.Stores, 0u);
  // And the bypass really compiled: same output as an uncached run.
  PO.Cache = nullptr;
  EXPECT_EQ(printFunction(Opt),
            printFunction(compileWithFallback(Corpus.front().Prepared, PO)));
}

TEST(CompileCacheTest, CorruptDiskEntriesDegradeToMisses) {
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / "specpre-cache-test-corrupt";
  fs::remove_all(Dir);

  auto Corpus = makeCorpus(2);
  CompileCache::Config CC;
  CC.DiskDir = Dir.string();
  CompileResult Cold;
  {
    CompileCache Cache(CC);
    Cold = compileSerial(Corpus, PreStrategy::McSsaPre, &Cache);
    EXPECT_EQ(Cache.counters().DiskWrites, Corpus.size());
  }
  // Vandalize every on-disk entry a different way: one truncated to
  // nothing, one replaced by a header that lies about its contents.
  unsigned I = 0;
  for (const fs::directory_entry &F : fs::directory_iterator(Dir)) {
    std::ofstream Out(F.path(), std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(Out) << F.path();
    if (I++ % 2)
      Out << "specpre-cache v2\nssa 2\ngarbage\n";
  }
  // A fresh process over the same directory: the store still serves the
  // torn bytes (it cannot decode them), but the compile layer must fall
  // through to a full recompile with the same bits — and overwrite the
  // entry — never error out or return garbage.
  CompileCache Cache(CC);
  CompileResult Warm = compileSerial(Corpus, PreStrategy::McSsaPre, &Cache);
  expectSameResults(Cold, Warm, "recompile after corruption");
  EXPECT_EQ(Cache.counters().Stores, Corpus.size());
  EXPECT_EQ(Cache.counters().VerifyMismatches, 0u);

  // The overwritten entries are whole again: a third pass replays them.
  CompileCache Healed(CC);
  CacheCounters Before = Healed.counters();
  CompileResult Replayed =
      compileSerial(Corpus, PreStrategy::McSsaPre, &Healed);
  expectSameResults(Cold, Replayed, "replay after heal");
  EXPECT_EQ(Healed.counters().Hits - Before.Hits, Corpus.size());
  fs::remove_all(Dir);
}

TEST(CompileCacheTest, DiskTierEvictsLruUnderTheByteCap) {
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / "specpre-cache-test-evict";
  fs::remove_all(Dir);

  auto Corpus = makeCorpus(6);
  uint64_t Total = 0;
  {
    CompileCache::Config CC;
    CC.DiskDir = Dir.string();
    CompileCache Cache(CC);
    compileSerial(Corpus, PreStrategy::McSsaPre, &Cache);
    ASSERT_EQ(Cache.counters().DiskWrites, Corpus.size());
    for (const fs::directory_entry &F : fs::directory_iterator(Dir))
      Total += fs::file_size(F.path());
  }
  ASSERT_GT(Total, 0u);

  // Age the entries deterministically: file I is (N - I) hours stale.
  // No sleeping — eviction order comes entirely from mtimes.
  std::vector<fs::path> Files;
  for (const fs::directory_entry &F : fs::directory_iterator(Dir))
    Files.push_back(F.path());
  std::sort(Files.begin(), Files.end());
  auto Now = fs::file_time_type::clock::now();
  for (size_t I = 0; I != Files.size(); ++I)
    fs::last_write_time(Files[I],
                        Now - std::chrono::hours(Files.size() - I));

  // A cap one byte below the directory's real size: the constructor's
  // initial sweep must bring the pre-populated tier under it (to 90% of
  // the cap), oldest entries first. Generated programs vary in size, so
  // the cap is derived from the measured total, not a per-entry guess.
  CompileCache::Config CC;
  CC.DiskDir = Dir.string();
  CC.MaxDiskBytes = Total - 1;
  CompileCache Cache(CC);
  EXPECT_GT(Cache.counters().DiskEvictions, 0u);

  uint64_t Remaining = 0, Count = 0;
  for (const fs::directory_entry &F : fs::directory_iterator(Dir)) {
    Remaining += fs::file_size(F.path());
    ++Count;
  }
  EXPECT_LE(Remaining, CC.MaxDiskBytes);
  EXPECT_GT(Count, 0u) << "eviction must converge, not clear the tier";
  // LRU, not random: the newest file (largest mtime) survived.
  EXPECT_TRUE(fs::exists(Files.back()))
      << "most recent entry was evicted before older ones";
  EXPECT_FALSE(fs::exists(Files.front()))
      << "oldest entry outlived the sweep";

  // Evicted keys are clean misses that repopulate; surviving keys hit.
  CompileResult Again = compileSerial(Corpus, PreStrategy::McSsaPre, &Cache);
  CacheCounters C = Cache.counters();
  EXPECT_GT(C.Hits, 0u);
  EXPECT_GT(C.Misses, 0u);
  EXPECT_EQ(C.Hits + C.Misses, Corpus.size());
  fs::remove_all(Dir);
}

TEST(CompileCacheTest, SweepReapsStaleTempFilesOnly) {
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / "specpre-cache-test-tmp";
  fs::remove_all(Dir);
  fs::create_directories(Dir);

  // A crashed writer's orphan (backdated past the reap horizon) and a
  // live writer's fresh temp file.
  fs::path Stale = Dir / "deadbeef.sprc.tmp.1234.0";
  fs::path Fresh = Dir / "cafef00d.sprc.tmp.5678.0";
  { std::ofstream(Stale) << std::string(64, 'x'); }
  { std::ofstream(Fresh) << std::string(64, 'y'); }
  fs::last_write_time(Stale, fs::file_time_type::clock::now() -
                                 std::chrono::hours(1));

  CompileCache::Config CC;
  CC.DiskDir = Dir.string();
  CC.MaxDiskBytes = 1 << 20;
  CompileCache Cache(CC); // constructor sweep
  EXPECT_FALSE(fs::exists(Stale)) << "hour-old orphan not reaped";
  EXPECT_TRUE(fs::exists(Fresh)) << "live writer's temp file reaped";
  fs::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Verify mode and payload round-trip
//===----------------------------------------------------------------------===//

TEST(CompileCacheTest, VerifyModeAuditsHitsWithoutFalseMismatches) {
  auto Corpus = makeCorpus(4);
  CompileCache::Config CC;
  CC.Mode = CacheMode::Verify;
  CompileCache Cache(CC);
  CompileResult Cold = compileSerial(Corpus, PreStrategy::McSsaPre, &Cache);
  CompileResult Warm = compileSerial(Corpus, PreStrategy::McSsaPre, &Cache);
  expectSameResults(Cold, Warm, "verify mode");
  CacheCounters C = Cache.counters();
  EXPECT_EQ(C.Hits, Corpus.size());
  EXPECT_EQ(C.VerifyMismatches, 0u);
}

TEST(CompileCacheTest, PayloadRoundTripsExactly) {
  auto Corpus = makeCorpus(3);
  for (const CorpusEntry &E : Corpus) {
    PreStats Stats;
    PreOptions PO;
    PO.Strategy = PreStrategy::McSsaPre;
    PO.Prof = &E.NodeOnly;
    PO.Stats = &Stats;
    CompileOutcomeRecord Outcome;
    Function Opt = compileWithFallback(E.Prepared, PO, &Outcome);

    std::string Payload =
        encodeCachePayload(Opt, Stats.records(), Outcome);
    Function Decoded;
    std::vector<ExprStatsRecord> Records;
    CompileOutcomeRecord DecodedOutcome;
    ASSERT_TRUE(decodeCachePayload(Payload, Decoded, Records,
                                   DecodedOutcome));
    EXPECT_EQ(printFunction(Decoded), printFunction(Opt));
    EXPECT_EQ(Decoded.IsSSA, Opt.IsSSA);
    EXPECT_TRUE(Records == Stats.records());
    EXPECT_TRUE(DecodedOutcome == Outcome);

    // Truncating the payload anywhere must fail cleanly, never decode to
    // a different result.
    for (size_t Cut : {Payload.size() - 1, Payload.size() / 2, size_t{0}}) {
      Function Junk;
      std::vector<ExprStatsRecord> JunkRecords;
      CompileOutcomeRecord JunkOutcome;
      EXPECT_FALSE(decodeCachePayload(Payload.substr(0, Cut), Junk,
                                      JunkRecords, JunkOutcome))
          << "truncation at " << Cut << " decoded";
    }
  }
}

TEST(CompileCacheTest, CorruptedIntegerTokensAreRejected) {
  // The corruption corpus for the payload parsers. Before the checked
  // linecodec parsers, strtoull slack let several of these *decode
  // successfully* — "+0" for a count was read as 0, overflow digits
  // clamped to ULLONG_MAX — turning a flipped disk byte into silently
  // wrong replay data instead of a miss.
  auto Corpus = makeCorpus(1);
  const CorpusEntry &E = Corpus.front();
  PreStats Stats;
  PreOptions PO;
  PO.Strategy = PreStrategy::McSsaPre;
  PO.Prof = &E.NodeOnly;
  PO.Stats = &Stats;
  CompileOutcomeRecord Outcome;
  Function Opt = compileWithFallback(E.Prepared, PO, &Outcome);
  std::string Payload = encodeCachePayload(Opt, Stats.records(), Outcome);

  size_t CountPos = Payload.find("records ");
  ASSERT_NE(CountPos, std::string::npos);
  CountPos += std::strlen("records ");
  size_t CountEnd = Payload.find('\n', CountPos);
  ASSERT_NE(CountEnd, std::string::npos);
  const std::string CountTok = Payload.substr(CountPos, CountEnd - CountPos);

  auto DecodeWithCount = [&](const std::string &Tok) {
    std::string Mutated = Payload;
    Mutated.replace(CountPos, CountTok.size(), Tok);
    Function Junk;
    std::vector<ExprStatsRecord> Records;
    CompileOutcomeRecord JunkOutcome;
    return decodeCachePayload(Mutated, Junk, Records, JunkOutcome);
  };

  EXPECT_TRUE(DecodeWithCount(CountTok)) << "identity mutation must decode";
  // Sign slack: strtoull accepts both; a cache entry must not.
  EXPECT_FALSE(DecodeWithCount("+" + CountTok));
  EXPECT_FALSE(DecodeWithCount("-1"));
  // ERANGE overflow: 26 digits clamp to ULLONG_MAX without errno checks.
  EXPECT_FALSE(DecodeWithCount("99999999999999999999999999"));
  // Trailing garbage and empty tokens.
  EXPECT_FALSE(DecodeWithCount(CountTok + "x"));
  EXPECT_FALSE(DecodeWithCount("0x10"));
}

//===----------------------------------------------------------------------===//
// Durability: the checksum trailer, fault-injected publishes, the
// breaker, and the scrubber (docs/CACHING.md "Durability and
// self-healing")
//===----------------------------------------------------------------------===//

namespace {

/// Disarms injection on every exit path so a failing assertion cannot
/// leak an armed spec into later tests.
struct InjectionGuard {
  explicit InjectionGuard(const char *Spec) {
    EXPECT_TRUE(configureFaultInjection(Spec).isOk()) << Spec;
  }
  ~InjectionGuard() { disableFaultInjection(); }
};

std::string readFileBytes(const std::filesystem::path &P) {
  std::ifstream In(P, std::ios::binary);
  EXPECT_TRUE(In) << P;
  std::stringstream Buf;
  Buf << In.rdbuf();
  return std::move(Buf).str();
}

void writeFileBytes(const std::filesystem::path &P, const std::string &Bytes) {
  std::ofstream Out(P, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(Out) << P;
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
}

} // namespace

TEST(CompileCacheTest, DiskEntryTrailerRoundTrips) {
  const std::string Payloads[] = {"", "x", std::string(1000, 'z'),
                                  "specpre-cache v2\nssa 1\nir\nret 0\n"};
  for (const std::string &P : Payloads) {
    std::string Framed = CompileCache::encodeDiskEntry(P);
    ASSERT_GT(Framed.size(), P.size());
    std::string Back;
    ASSERT_TRUE(CompileCache::decodeDiskEntry(Framed, Back)) << P.size();
    EXPECT_EQ(Back, P);
  }
  // Distinct payloads get distinct sums (no degenerate constant digest).
  EXPECT_NE(CompileCache::payloadChecksum("a"),
            CompileCache::payloadChecksum("b"));
  // Appending bytes changes the digest even when the prefix is shared.
  EXPECT_NE(CompileCache::payloadChecksum("abc"),
            CompileCache::payloadChecksum("abcd"));
  std::string Empty;
  EXPECT_FALSE(CompileCache::decodeDiskEntry("", Empty));
}

TEST(CompileCacheTest, EveryCorruptionClassIsACleanMiss) {
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / "specpre-cache-test-classes";
  fs::remove_all(Dir);

  auto Corpus = makeCorpus(1);
  CompileCache::Config CC;
  CC.DiskDir = Dir.string();
  CompileResult Cold;
  {
    CompileCache Cache(CC);
    Cold = compileSerial(Corpus, PreStrategy::McSsaPre, &Cache);
    ASSERT_EQ(Cache.counters().DiskWrites, 1u);
  }
  fs::path EntryPath;
  for (const fs::directory_entry &F : fs::directory_iterator(Dir))
    EntryPath = F.path();
  ASSERT_FALSE(EntryPath.empty());
  const std::string Good = readFileBytes(EntryPath);
  ASSERT_GT(Good.size(), 32u);

  // The framed entry's interesting offsets: the payload's own header
  // line, an integer token, the payload middle, and the trailer.
  size_t HeaderEnd = Good.find('\n');
  ASSERT_NE(HeaderEnd, std::string::npos);
  size_t RecordsAt = Good.find("records ");
  ASSERT_NE(RecordsAt, std::string::npos);
  size_t TrailerAt = Good.rfind("sprc-sum ");
  ASSERT_NE(TrailerAt, std::string::npos);

  std::vector<std::pair<const char *, std::string>> Mutations;
  // Zero-length file and truncation at every section boundary.
  Mutations.emplace_back("zero-length", "");
  for (size_t Cut : {size_t{1}, HeaderEnd, RecordsAt, Good.size() / 2,
                     TrailerAt, Good.size() - 1})
    Mutations.emplace_back("truncation", Good.substr(0, Cut));
  // Single bit-flips in the header, integer, payload, trailer regions.
  for (size_t At : {size_t{2}, RecordsAt + 8, Good.size() / 2,
                    TrailerAt + 10, Good.size() - 2}) {
    std::string Flipped = Good;
    Flipped[At] = static_cast<char>(Flipped[At] ^ 0x01);
    Mutations.emplace_back("bit-flip", Flipped);
  }

  for (size_t I = 0; I != Mutations.size(); ++I) {
    SCOPED_TRACE(std::string(Mutations[I].first) + " #" + std::to_string(I));
    writeFileBytes(EntryPath, Mutations[I].second);
    // Every class fails the static decoder...
    std::string Out;
    EXPECT_FALSE(CompileCache::decodeDiskEntry(Mutations[I].second, Out));
    // ...and through a fresh cache it is a clean miss: the entry is
    // dropped, accounted, recompiled bit-identically, and republished.
    CompileCache Cache(CC);
    CompileResult Warm = compileSerial(Corpus, PreStrategy::McSsaPre, &Cache);
    expectSameResults(Cold, Warm, Mutations[I].first);
    CacheCounters C = Cache.counters();
    EXPECT_EQ(C.Hits, 0u);
    EXPECT_EQ(C.Misses, 1u);
    EXPECT_EQ(C.CorruptDropped, 1u);
    EXPECT_EQ(C.Stores, 1u);
    EXPECT_EQ(C.DiskWrites, 1u) << "dropped entry was not republished";
    // Republished bytes must be whole again for the next round.
    std::string Back;
    EXPECT_TRUE(CompileCache::decodeDiskEntry(readFileBytes(EntryPath), Back));
  }
  fs::remove_all(Dir);
}

TEST(CompileCacheTest, DiskFaultSitesDoNotBypassTheCache) {
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / "specpre-cache-test-nobypass";
  fs::remove_all(Dir);

  auto Corpus = makeCorpus(2);
  CompileCache::Config CC;
  CC.DiskDir = Dir.string();
  CompileCache Cache(CC);
  // Disk sites armed (at rate zero) leave compile outcomes input-pure,
  // so the cache must stay engaged — otherwise the disk sites could
  // never see traffic. Contrast FaultInjectionBypassesTheCacheEntirely.
  InjectionGuard Guard("disk-enospc:0.0:1,disk-eio:0.0:2");
  ASSERT_TRUE(faultInjectionEnabled());
  ASSERT_FALSE(pipelineFaultInjectionEnabled());
  CompileResult Cold = compileSerial(Corpus, PreStrategy::McSsaPre, &Cache);
  CompileResult Warm = compileSerial(Corpus, PreStrategy::McSsaPre, &Cache);
  expectSameResults(Cold, Warm, "disk sites armed");
  CacheCounters C = Cache.counters();
  EXPECT_EQ(C.Stores, Corpus.size());
  EXPECT_EQ(C.Hits, Corpus.size());
  fs::remove_all(Dir);
}

TEST(CompileCacheTest, FailedStoresDegradeToPassthrough) {
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / "specpre-cache-test-storefail";
  fs::remove_all(Dir);

  auto Corpus = makeCorpus(2);
  CompileResult Reference = compileSerial(Corpus, PreStrategy::McSsaPre,
                                          nullptr);
  CompileCache::Config CC;
  CC.DiskDir = Dir.string();
  CompileCache Cache(CC);
  // Every publish's rename fails: the request must still succeed with
  // bit-identical output, and no temp (or torn final) file may remain.
  InjectionGuard Guard("disk-rename-fail:1:1");
  CompileResult Got = compileSerial(Corpus, PreStrategy::McSsaPre, &Cache);
  expectSameResults(Reference, Got, "rename failures");
  CacheCounters C = Cache.counters();
  EXPECT_EQ(C.Stores, Corpus.size());
  EXPECT_EQ(C.DiskWrites, 0u);
  EXPECT_EQ(C.DiskIoErrors, Corpus.size());
  unsigned FilesLeft = 0;
  for (const fs::directory_entry &F : fs::directory_iterator(Dir)) {
    (void)F;
    ++FilesLeft;
  }
  EXPECT_EQ(FilesLeft, 0u) << "failed publish leaked a file";
  fs::remove_all(Dir);
}

TEST(CompileCacheTest, TornAndRottenPublishesAreCaughtByTheChecksum) {
  namespace fs = std::filesystem;
  for (const char *Spec : {"disk-short-write:1:1", "disk-corrupt-byte:1:1"}) {
    SCOPED_TRACE(Spec);
    fs::path Dir = fs::temp_directory_path() / "specpre-cache-test-torn";
    fs::remove_all(Dir);

    auto Corpus = makeCorpus(2);
    CompileCache::Config CC;
    CC.DiskDir = Dir.string();
    CompileResult Cold;
    {
      CompileCache Cache(CC);
      InjectionGuard Guard(Spec);
      // The injected fault is silent: the publish "succeeds" but the
      // bytes on disk are torn or rotten.
      Cold = compileSerial(Corpus, PreStrategy::McSsaPre, &Cache);
      EXPECT_EQ(Cache.counters().DiskWrites, Corpus.size());
    }
    // A fresh process reads the damaged tier: every entry must be
    // detected, dropped, recompiled bit-identically, and republished.
    CompileCache Cache(CC);
    CompileResult Warm = compileSerial(Corpus, PreStrategy::McSsaPre, &Cache);
    expectSameResults(Cold, Warm, Spec);
    CacheCounters C = Cache.counters();
    EXPECT_EQ(C.CorruptDropped, Corpus.size());
    EXPECT_EQ(C.Hits, 0u);
    EXPECT_EQ(C.DiskWrites, Corpus.size());

    // And the healed tier replays clean.
    CompileCache Healed(CC);
    CompileResult Replayed =
        compileSerial(Corpus, PreStrategy::McSsaPre, &Healed);
    expectSameResults(Cold, Replayed, "replay after heal");
    EXPECT_EQ(Healed.counters().Hits, Corpus.size());
    EXPECT_EQ(Healed.counters().CorruptDropped, 0u);
    fs::remove_all(Dir);
  }
}

TEST(CompileCacheTest, EnospcBurstOpensAndReclosesTheBreaker) {
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / "specpre-cache-test-breaker";
  fs::remove_all(Dir);

  CompileCache::Config CC;
  CC.DiskDir = Dir.string();
  CC.BreakerThreshold = 3;
  CC.BreakerCooldownMs = 50;
  CompileCache Cache(CC);
  auto KeyN = [](uint64_t N) { return CacheKey{0x1000 + N, N}; };

  {
    // A sustained ENOSPC burst: the first BreakerThreshold publishes
    // fail for real, then the breaker opens and short-circuits the rest
    // without touching the disk.
    InjectionGuard Guard("disk-enospc:1:1");
    for (uint64_t I = 0; I != 6; ++I)
      Cache.insert(KeyN(I), "payload-" + std::to_string(I));
    CacheCounters C = Cache.counters();
    EXPECT_EQ(Cache.breakerState(), DiskBreakerState::Open);
    EXPECT_EQ(C.BreakerOpens, 1u);
    EXPECT_EQ(C.DiskIoErrors, CC.BreakerThreshold);
    EXPECT_EQ(C.BreakerShortCircuits, 6 - CC.BreakerThreshold);
    EXPECT_EQ(C.DiskWrites, 0u);

    // A cold lookup against an open breaker is a miss by decree — no
    // disk access, no stall.
    EXPECT_FALSE(Cache.lookup(KeyN(99)).has_value());
    EXPECT_GT(Cache.counters().BreakerShortCircuits,
              C.BreakerShortCircuits);
  }

  // Disk recovers; after the cooldown one half-open probe succeeds and
  // re-closes the breaker, and publishes flow again.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  Cache.insert(KeyN(100), "recovered");
  EXPECT_EQ(Cache.breakerState(), DiskBreakerState::Closed);
  CacheCounters C = Cache.counters();
  EXPECT_EQ(C.DiskWrites, 1u);

  // The probe's bytes really landed, whole.
  CompileCache Fresh(CC);
  auto Back = Fresh.lookup(KeyN(100));
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(*Back, "recovered");
  fs::remove_all(Dir);
}

TEST(CompileCacheTest, DurablePublishRoundTrips) {
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / "specpre-cache-test-durable";
  fs::remove_all(Dir);

  CompileCache::Config CC;
  CC.DiskDir = Dir.string();
  CC.Durable = true; // fsync file + directory around the rename
  {
    CompileCache Cache(CC);
    Cache.insert(CacheKey{1, 2}, "durable payload");
    EXPECT_EQ(Cache.counters().DiskWrites, 1u);
  }
  CompileCache Fresh(CC);
  auto Back = Fresh.lookup(CacheKey{1, 2});
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(*Back, "durable payload");
  fs::remove_all(Dir);
}

TEST(CompileCacheTest, SweepReapsTempsWithoutAByteCap) {
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / "specpre-cache-test-nocap-tmp";
  fs::remove_all(Dir);
  fs::create_directories(Dir);

  // The pre-fix sweep returned immediately without a byte cap, so an
  // unbounded tier leaked crashed writers' temps forever.
  fs::path Stale = Dir / "deadbeef.sprc.tmp.1234.0";
  fs::path Fresh = Dir / "cafef00d.sprc.tmp.5678.0";
  { std::ofstream(Stale) << std::string(64, 'x'); }
  { std::ofstream(Fresh) << std::string(64, 'y'); }
  fs::last_write_time(Stale, fs::file_time_type::clock::now() -
                                 std::chrono::hours(1));

  CompileCache::Config CC;
  CC.DiskDir = Dir.string(); // MaxDiskBytes = 0: unbounded
  CompileCache Cache(CC);
  Cache.sweepDiskTier();
  EXPECT_FALSE(fs::exists(Stale)) << "uncapped sweep left the orphan";
  EXPECT_TRUE(fs::exists(Fresh)) << "live writer's temp file reaped";
  fs::remove_all(Dir);
}

TEST(CompileCacheTest, ScrubQuarantinesCorruptEntriesAndReapsTemps) {
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / "specpre-cache-test-scrub";
  fs::remove_all(Dir);

  CompileCache::Config CC;
  CC.DiskDir = Dir.string();
  CompileCache Cache(CC);
  for (uint64_t I = 0; I != 3; ++I)
    Cache.insert(CacheKey{I, I}, "scrub-payload-" + std::to_string(I));
  ASSERT_EQ(Cache.counters().DiskWrites, 3u);

  // Rot one entry and orphan one stale temp.
  fs::path Victim = Dir / (CacheKey{1, 1}.toHex() + ".sprc");
  std::string Bytes = readFileBytes(Victim);
  Bytes[Bytes.size() / 2] = static_cast<char>(Bytes[Bytes.size() / 2] ^ 0x10);
  writeFileBytes(Victim, Bytes);
  fs::path Stale = Dir / "deadbeef.sprc.tmp.42.0";
  { std::ofstream(Stale) << "orphan"; }
  fs::last_write_time(Stale, fs::file_time_type::clock::now() -
                                 std::chrono::hours(1));

  CompileCache::ScrubReport R = Cache.scrubDiskTier();
  EXPECT_EQ(R.Scanned, 3u);
  EXPECT_EQ(R.Quarantined, 1u);
  EXPECT_EQ(R.ReadFailures, 0u);
  EXPECT_FALSE(fs::exists(Victim)) << "corrupt entry still servable";
  EXPECT_TRUE(fs::exists(Victim.string() + ".quar"))
      << "quarantine kept no forensic copy";
  EXPECT_FALSE(fs::exists(Stale)) << "scrub left the temp orphan";
  CacheCounters C = Cache.counters();
  EXPECT_EQ(C.ScrubScanned, 3u);
  EXPECT_EQ(C.ScrubQuarantined, 1u);
  EXPECT_EQ(C.CorruptDropped, 1u);

  // The quarantined key is a clean disk miss; its neighbors still hit.
  CompileCache Fresh(CC);
  EXPECT_FALSE(Fresh.lookup(CacheKey{1, 1}).has_value());
  auto Neighbor = Fresh.lookup(CacheKey{0, 0});
  ASSERT_TRUE(Neighbor.has_value());
  EXPECT_EQ(*Neighbor, "scrub-payload-0");

  // A second scrub over the healed tier finds nothing new to do.
  CompileCache::ScrubReport R2 = Cache.scrubDiskTier();
  EXPECT_EQ(R2.Quarantined, 0u);
  fs::remove_all(Dir);
}
