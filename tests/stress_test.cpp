//===- tests/stress_test.cpp - Large-program stress ------------------------------===//
//
// One big generated program (hundreds of blocks, thousands of
// statements) through every strategy plus the scalar pipeline and
// out-of-SSA, end to end. Guards against quadratic blowups and
// deep-recursion issues that small unit tests cannot see.
//
//===----------------------------------------------------------------------===//

#include "analysis/Cfg.h"
#include "analysis/DomTree.h"
#include "interp/Interpreter.h"
#include "ir/Verifier.h"
#include "opt/Cleanup.h"
#include "opt/ValueNumbering.h"
#include "pre/ExprKey.h"
#include "pre/Frg.h"
#include "pre/McPre.h"
#include "pre/McSsaPre.h"
#include "pre/PreDriver.h"
#include "ssa/SsaConstruction.h"
#include "ssa/SsaDestruction.h"
#include "support/PassTimer.h"
#include "workload/ProgramGenerator.h"

#include <gtest/gtest.h>

using namespace specpre;

TEST(Stress, LargeProgramAllStrategies) {
  GeneratorConfig Cfg;
  Cfg.MaxDepth = 5;
  Cfg.RegionsPerLevel = 3;
  Cfg.ExprPoolSize = 14;
  Cfg.NumVars = 10;
  Cfg.AllowDiv = true;
  // Deterministically search for a seed of the intended size (the
  // generator's size distribution is heavy-tailed).
  Function Prepared;
  for (uint64_t Seed = 0xBEEF;; ++Seed) {
    Prepared = generateProgram(Seed, Cfg, "stress");
    if (Prepared.numBlocks() >= 150u)
      break;
  }
  prepareFunction(Prepared);
  ASSERT_GE(Prepared.numBlocks(), 150u);

  Profile Prof;
  ExecOptions EO;
  EO.CollectProfile = &Prof;
  std::vector<int64_t> Args(Prepared.Params.size(), 77);
  ExecResult Train = interpret(Prepared, Args, EO);
  ASSERT_FALSE(Train.TimedOut);
  ASSERT_FALSE(Train.Trapped);

  for (PreStrategy S :
       {PreStrategy::SsaPre, PreStrategy::SsaPreSpec, PreStrategy::McSsaPre,
        PreStrategy::McPre, PreStrategy::Lcm}) {
    PreOptions PO;
    PO.Strategy = S;
    PO.Prof = &Prof;
    PO.Verify = false; // the naive O(B^2) oracle is too slow at this size
    Function Opt = compileWithPre(Prepared, PO);
    if (Opt.IsSSA) {
      runValueNumbering(Opt);
      runCleanupPipeline(Opt);
      destructSsa(Opt);
    }
    std::string Error;
    ASSERT_TRUE(verifyFunction(Opt, Error))
        << strategyName(S) << ": " << Error;
    ExecResult Base = interpret(Prepared, Args);
    ExecResult O = interpret(Opt, Args);
    ASSERT_TRUE(Base.sameObservableBehavior(O)) << strategyName(S);
    ASSERT_LE(O.DynamicComputations, Base.DynamicComputations)
        << strategyName(S);
  }
}

TEST(Stress, DeepLoopNestProfileAndPre) {
  GeneratorConfig Cfg;
  Cfg.MaxDepth = 6;
  Cfg.IfChance = 100;
  Cfg.WhileChance = 400;
  Cfg.DoWhileChance = 250;
  Cfg.MinTrip = 2;
  Cfg.MaxTrip = 4;
  Function Prepared;
  for (uint64_t Seed = 0xD00D;; ++Seed) {
    Prepared = generateProgram(Seed, Cfg, "deep");
    if (Prepared.numBlocks() >= 60u)
      break;
  }
  prepareFunction(Prepared);
  Profile Prof;
  ExecOptions EO;
  EO.MaxSteps = 500'000'000;
  EO.CollectProfile = &Prof;
  std::vector<int64_t> Args(Prepared.Params.size(), 5);
  ExecResult Train = interpret(Prepared, Args, EO);
  ASSERT_FALSE(Train.TimedOut);
  std::string Error;
  ASSERT_TRUE(Prof.verifyConservation(Prepared, Error)) << Error;

  Profile NodeOnly = Prof.withoutEdgeFreqs();
  PreOptions PO;
  PO.Strategy = PreStrategy::McSsaPre;
  PO.Prof = &NodeOnly;
  PO.Verify = false;
  Function Opt = compileWithPre(Prepared, PO);
  ExecResult Base = interpret(Prepared, Args, EO);
  ExecOptions EO2;
  EO2.MaxSteps = 500'000'000;
  ExecResult O = interpret(Opt, Args, EO2);
  ASSERT_TRUE(Base.sameObservableBehavior(O));
  ASSERT_LE(O.DynamicComputations, Base.DynamicComputations);
}

// Thousands of arena-backed network builds (the CSR FlowNetwork path
// shared by MC-SSAPRE's EFG and MC-PRE's CFG network): the per-thread
// bump arena must reach its high-water mark in the first epoch and
// never grow afterwards — reset() retains chunks, so steady-state
// builds perform no heap allocation at all. Asserted through the same
// ArenaCounters the metrics JSON exports, so a regression shows up both
// here and in `specpre-opt --metrics-out=`.
TEST(Stress, ArenaNetworkBuildsStayFlat) {
  GeneratorConfig GenCfg;
  GenCfg.MaxDepth = 4;
  GenCfg.RegionsPerLevel = 2;
  GenCfg.ExprPoolSize = 8;
  GenCfg.NumVars = 6;
  Function F;
  for (uint64_t Seed = 0xA11E5;; ++Seed) {
    F = generateProgram(Seed, GenCfg, "arena_stress");
    if (F.numBlocks() >= 30u)
      break;
  }
  Profile Prof;
  ExecOptions EO;
  EO.CollectProfile = &Prof;
  std::vector<int64_t> Args(F.Params.size(), 5);
  ExecResult Train = interpret(F, Args, EO);
  ASSERT_FALSE(Train.TimedOut);
  ASSERT_FALSE(Train.Trapped);
  Profile NodeProf = Prof.withoutEdgeFreqs();

  Function Ssa = F;
  constructSsa(Ssa);
  Cfg C(Ssa);
  DomTree DT = DomTree::buildDominators(C);
  std::vector<ExprKey> Candidates;
  for (const ExprKey &E : collectCandidateExprs(Ssa))
    if (!E.canFault())
      Candidates.push_back(E);
  ASSERT_FALSE(Candidates.empty());

  auto RunAllCandidates = [&] {
    for (const ExprKey &E : Candidates) {
      Frg G(Ssa, C, DT, E);
      computeSpeculativePlacement(G, NodeProf);
    }
  };

  PipelineMetrics Warmup;
  {
    MetricsScope MS(&Warmup);
    RunAllCandidates();
  }
  uint64_t BuildsPerEpoch = Warmup.arena().NetworkBuilds;
  ASSERT_GT(BuildsPerEpoch, 0u);
  ASSERT_GT(Warmup.arena().PeakBytes, 0u);

  const uint64_t Epochs = 2000 / BuildsPerEpoch + 1; // >= 2000 builds total
  PipelineMetrics Steady;
  {
    MetricsScope MS(&Steady);
    for (uint64_t I = 0; I != Epochs; ++I)
      RunAllCandidates();
  }
  EXPECT_EQ(Steady.arena().NetworkBuilds, Epochs * BuildsPerEpoch);
  // The high-water mark was established during warmup; repeating the
  // same builds thousands of times must not raise it (PeakBytes is a
  // running max over the thread-local arena's lifetime peak).
  EXPECT_EQ(Steady.arena().PeakBytes, Warmup.arena().PeakBytes);
  EXPECT_EQ(Steady.arena().ChunkAllocations,
            Warmup.arena().ChunkAllocations);
  // And the JSON export carries exactly these counters.
  std::string Json = Steady.arenaToJson();
  EXPECT_NE(Json.find("\"network_builds\": " +
                      std::to_string(Epochs * BuildsPerEpoch)),
            std::string::npos)
      << Json;
  EXPECT_NE(Json.find("\"peak_bytes\": " +
                      std::to_string(Warmup.arena().PeakBytes)),
            std::string::npos)
      << Json;

  // The MC-PRE leg exercises the same arena/CSR machinery on the CFG
  // network; its peak must be flat across repeated full runs too.
  PipelineMetrics McPreWarm, McPreSteady;
  {
    MetricsScope MS(&McPreWarm);
    Function Copy = F;
    runMcPre(Copy, Prof);
  }
  ASSERT_GT(McPreWarm.arena().NetworkBuilds, 0u);
  {
    MetricsScope MS(&McPreSteady);
    for (int I = 0; I != 20; ++I) {
      Function Copy = F;
      runMcPre(Copy, Prof);
    }
  }
  EXPECT_EQ(McPreSteady.arena().NetworkBuilds,
            20 * McPreWarm.arena().NetworkBuilds);
  EXPECT_LE(McPreSteady.arena().PeakBytes, McPreWarm.arena().PeakBytes);
}
