//===- tests/stress_test.cpp - Large-program stress ------------------------------===//
//
// One big generated program (hundreds of blocks, thousands of
// statements) through every strategy plus the scalar pipeline and
// out-of-SSA, end to end. Guards against quadratic blowups and
// deep-recursion issues that small unit tests cannot see.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ir/Verifier.h"
#include "opt/Cleanup.h"
#include "opt/ValueNumbering.h"
#include "pre/PreDriver.h"
#include "ssa/SsaDestruction.h"
#include "workload/ProgramGenerator.h"

#include <gtest/gtest.h>

using namespace specpre;

TEST(Stress, LargeProgramAllStrategies) {
  GeneratorConfig Cfg;
  Cfg.MaxDepth = 5;
  Cfg.RegionsPerLevel = 3;
  Cfg.ExprPoolSize = 14;
  Cfg.NumVars = 10;
  Cfg.AllowDiv = true;
  // Deterministically search for a seed of the intended size (the
  // generator's size distribution is heavy-tailed).
  Function Prepared;
  for (uint64_t Seed = 0xBEEF;; ++Seed) {
    Prepared = generateProgram(Seed, Cfg, "stress");
    if (Prepared.numBlocks() >= 150u)
      break;
  }
  prepareFunction(Prepared);
  ASSERT_GE(Prepared.numBlocks(), 150u);

  Profile Prof;
  ExecOptions EO;
  EO.CollectProfile = &Prof;
  std::vector<int64_t> Args(Prepared.Params.size(), 77);
  ExecResult Train = interpret(Prepared, Args, EO);
  ASSERT_FALSE(Train.TimedOut);
  ASSERT_FALSE(Train.Trapped);

  for (PreStrategy S :
       {PreStrategy::SsaPre, PreStrategy::SsaPreSpec, PreStrategy::McSsaPre,
        PreStrategy::McPre, PreStrategy::Lcm}) {
    PreOptions PO;
    PO.Strategy = S;
    PO.Prof = &Prof;
    PO.Verify = false; // the naive O(B^2) oracle is too slow at this size
    Function Opt = compileWithPre(Prepared, PO);
    if (Opt.IsSSA) {
      runValueNumbering(Opt);
      runCleanupPipeline(Opt);
      destructSsa(Opt);
    }
    std::string Error;
    ASSERT_TRUE(verifyFunction(Opt, Error))
        << strategyName(S) << ": " << Error;
    ExecResult Base = interpret(Prepared, Args);
    ExecResult O = interpret(Opt, Args);
    ASSERT_TRUE(Base.sameObservableBehavior(O)) << strategyName(S);
    ASSERT_LE(O.DynamicComputations, Base.DynamicComputations)
        << strategyName(S);
  }
}

TEST(Stress, DeepLoopNestProfileAndPre) {
  GeneratorConfig Cfg;
  Cfg.MaxDepth = 6;
  Cfg.IfChance = 100;
  Cfg.WhileChance = 400;
  Cfg.DoWhileChance = 250;
  Cfg.MinTrip = 2;
  Cfg.MaxTrip = 4;
  Function Prepared;
  for (uint64_t Seed = 0xD00D;; ++Seed) {
    Prepared = generateProgram(Seed, Cfg, "deep");
    if (Prepared.numBlocks() >= 60u)
      break;
  }
  prepareFunction(Prepared);
  Profile Prof;
  ExecOptions EO;
  EO.MaxSteps = 500'000'000;
  EO.CollectProfile = &Prof;
  std::vector<int64_t> Args(Prepared.Params.size(), 5);
  ExecResult Train = interpret(Prepared, Args, EO);
  ASSERT_FALSE(Train.TimedOut);
  std::string Error;
  ASSERT_TRUE(Prof.verifyConservation(Prepared, Error)) << Error;

  Profile NodeOnly = Prof.withoutEdgeFreqs();
  PreOptions PO;
  PO.Strategy = PreStrategy::McSsaPre;
  PO.Prof = &NodeOnly;
  PO.Verify = false;
  Function Opt = compileWithPre(Prepared, PO);
  ExecResult Base = interpret(Prepared, Args, EO);
  ExecOptions EO2;
  EO2.MaxSteps = 500'000'000;
  ExecResult O = interpret(Opt, Args, EO2);
  ASSERT_TRUE(Base.sameObservableBehavior(O));
  ASSERT_LE(O.DynamicComputations, Base.DynamicComputations);
}
