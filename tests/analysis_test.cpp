//===- tests/analysis_test.cpp - CFG analyses tests ----------------------------===//

#include "analysis/Cfg.h"
#include "analysis/CriticalEdges.h"
#include "analysis/DataFlow.h"
#include "analysis/DominanceFrontier.h"
#include "analysis/DomTree.h"
#include "analysis/LiveRanges.h"
#include "analysis/LoopRestructure.h"
#include "ssa/SsaConstruction.h"
#include "pre/PreDriver.h"
#include "analysis/Loops.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "workload/ProgramGenerator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace specpre;

namespace {

/// Naive dominance oracle: A dominates B iff removing A makes B
/// unreachable from the entry.
bool naiveDominates(const Cfg &C, BlockId A, BlockId B) {
  if (A == B)
    return true;
  std::vector<bool> Seen(C.numBlocks(), false);
  std::vector<BlockId> Work;
  if (A != 0) {
    Seen[0] = true;
    Work.push_back(0);
  }
  while (!Work.empty()) {
    BlockId U = Work.back();
    Work.pop_back();
    for (BlockId S : C.succs(U)) {
      if (S == A || Seen[S])
        continue;
      Seen[S] = true;
      Work.push_back(S);
    }
  }
  return !Seen[B];
}

Function irregularCfg() {
  return parseFunctionOrDie(R"(
    func g(p, q) {
    entry:
      br p, a, b
    a:
      br q, c, d
    b:
      jmp d
    c:
      jmp e
    d:
      br p > 1, e, f
    e:
      br q > 2, c, f
    f:
      ret p
    }
  )");
}

} // namespace

TEST(Cfg, PredsSuccsAndRpo) {
  Function F = irregularCfg();
  Cfg C(F);
  EXPECT_EQ(C.numBlocks(), 7u);
  // entry=0 a=1 b=2 c=3 d=4 e=5 f=6
  EXPECT_EQ(C.succs(0), (std::vector<BlockId>{1, 2}));
  EXPECT_EQ(C.preds(4).size(), 2u);
  EXPECT_EQ(C.reversePostOrder().front(), 0);
  EXPECT_EQ(C.reversePostOrder().size(), 7u);
  // RPO property: for every edge that is not a back edge (target earlier
  // in a DFS), source precedes target... check the entry precedes all.
  for (BlockId B : C.reversePostOrder())
    EXPECT_TRUE(C.isReachable(B));
}

TEST(Cfg, UnreachableBlocks) {
  Function F = parseFunctionOrDie(R"(
    func f(p) {
    entry:
      ret p
    dead:
      jmp dead2
    dead2:
      ret 0
    }
  )");
  Cfg C(F);
  EXPECT_TRUE(C.isReachable(0));
  EXPECT_FALSE(C.isReachable(1));
  EXPECT_FALSE(C.isReachable(2));
  EXPECT_EQ(removeUnreachableBlocks(F), 2u);
  EXPECT_EQ(F.numBlocks(), 1u);
}

TEST(DomTree, MatchesNaiveOracleOnIrregularCfg) {
  Function F = irregularCfg();
  Cfg C(F);
  DomTree DT = DomTree::buildDominators(C);
  for (unsigned A = 0; A != C.numBlocks(); ++A)
    for (unsigned B = 0; B != C.numBlocks(); ++B)
      EXPECT_EQ(DT.dominates(A, B), naiveDominates(C, A, B))
          << "A=" << A << " B=" << B;
}

TEST(DomTree, MatchesNaiveOracleOnRandomPrograms) {
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    GeneratorConfig Cfg0;
    Cfg0.MaxDepth = 3;
    Function F = generateProgram(Seed, Cfg0);
    Cfg C(F);
    DomTree DT = DomTree::buildDominators(C);
    for (unsigned A = 0; A != C.numBlocks(); ++A) {
      if (!C.isReachable(static_cast<BlockId>(A)))
        continue;
      for (unsigned B = 0; B != C.numBlocks(); ++B) {
        if (!C.isReachable(static_cast<BlockId>(B)))
          continue;
        ASSERT_EQ(DT.dominates(A, B), naiveDominates(C, A, B))
            << "seed=" << Seed << " A=" << A << " B=" << B;
      }
    }
  }
}

TEST(DomTree, PreorderCoversReachableBlocks) {
  Function F = irregularCfg();
  Cfg C(F);
  DomTree DT = DomTree::buildDominators(C);
  EXPECT_EQ(DT.preorder().size(), 7u);
  EXPECT_EQ(DT.preorder().front(), 0);
}

TEST(PostDomTree, LinearAndDiamond) {
  Function F = parseFunctionOrDie(R"(
    func f(p) {
    entry:
      br p, t, e
    t:
      jmp j
    e:
      jmp j
    j:
      ret p
    }
  )");
  Cfg C(F);
  DomTree PDT = DomTree::buildPostDominators(C);
  BlockId VirtualExit = static_cast<BlockId>(C.numBlocks());
  // j post-dominates everything; t does not post-dominate entry.
  EXPECT_TRUE(PDT.dominates(3, 0));
  EXPECT_TRUE(PDT.dominates(3, 1));
  EXPECT_FALSE(PDT.dominates(1, 0));
  EXPECT_TRUE(PDT.dominates(VirtualExit, 3));
}

TEST(DominanceFrontier, DiamondJoin) {
  Function F = parseFunctionOrDie(R"(
    func f(p) {
    entry:
      br p, t, e
    t:
      jmp j
    e:
      jmp j
    j:
      ret p
    }
  )");
  Cfg C(F);
  DomTree DT = DomTree::buildDominators(C);
  DominanceFrontier DF(C, DT);
  EXPECT_EQ(DF.frontier(1), (std::vector<BlockId>{3}));
  EXPECT_EQ(DF.frontier(2), (std::vector<BlockId>{3}));
  EXPECT_TRUE(DF.frontier(0).empty());
  EXPECT_TRUE(DF.frontier(3).empty());
  EXPECT_EQ(DF.iterated({1}), (std::vector<BlockId>{3}));
}

TEST(DominanceFrontier, LoopHeaderInOwnIteratedFrontier) {
  Function F = parseFunctionOrDie(R"(
    func f(p) {
    entry:
      jmp h
    h:
      br p, body, exit
    body:
      jmp h
    exit:
      ret p
    }
  )");
  Cfg C(F);
  DomTree DT = DomTree::buildDominators(C);
  DominanceFrontier DF(C, DT);
  // The body's frontier contains the header; the header's own frontier
  // contains itself (via the back edge).
  std::vector<BlockId> BodyDf = DF.frontier(2);
  EXPECT_TRUE(std::count(BodyDf.begin(), BodyDf.end(), 1));
  std::vector<BlockId> HDf = DF.frontier(1);
  EXPECT_TRUE(std::count(HDf.begin(), HDf.end(), 1));
}

TEST(DominanceFrontier, IteratedMatchesFixpointOnRandom) {
  for (uint64_t Seed = 20; Seed <= 26; ++Seed) {
    GeneratorConfig Cfg0;
    Function F = generateProgram(Seed, Cfg0);
    Cfg C(F);
    DomTree DT = DomTree::buildDominators(C);
    DominanceFrontier DF(C, DT);
    // Oracle: set-based fixpoint of DF over the seed set.
    std::vector<BlockId> Seeds;
    for (unsigned B = 0; B < C.numBlocks(); B += 3)
      if (C.isReachable(static_cast<BlockId>(B)))
        Seeds.push_back(static_cast<BlockId>(B));
    std::set<BlockId> Fix;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      std::set<BlockId> Sources(Seeds.begin(), Seeds.end());
      Sources.insert(Fix.begin(), Fix.end());
      for (BlockId S : Sources)
        for (BlockId D : DF.frontier(S))
          Changed |= Fix.insert(D).second;
    }
    std::vector<BlockId> Got = DF.iterated(Seeds);
    std::vector<BlockId> Want(Fix.begin(), Fix.end());
    EXPECT_EQ(Got, Want) << "seed " << Seed;
  }
}

TEST(Loops, SimpleLoopDetected) {
  Function F = parseFunctionOrDie(R"(
    func f(p) {
    entry:
      jmp h
    h:
      br p, body, exit
    body:
      jmp h
    exit:
      ret p
    }
  )");
  Cfg C(F);
  DomTree DT = DomTree::buildDominators(C);
  LoopInfo LI(C, DT);
  ASSERT_EQ(LI.loops().size(), 1u);
  const Loop &L = LI.loops()[0];
  EXPECT_EQ(L.Header, 1);
  EXPECT_EQ(L.Blocks, (std::vector<BlockId>{1, 2}));
  EXPECT_EQ(LI.depth(1), 1);
  EXPECT_EQ(LI.depth(3), 0);
}

TEST(Loops, NestedLoopDepths) {
  Function F = parseFunctionOrDie(R"(
    func f(p) {
    entry:
      jmp h1
    h1:
      br p, h2, exit
    h2:
      br p > 1, inner, back1
    inner:
      jmp h2
    back1:
      jmp h1
    exit:
      ret p
    }
  )");
  Cfg C(F);
  DomTree DT = DomTree::buildDominators(C);
  LoopInfo LI(C, DT);
  ASSERT_EQ(LI.loops().size(), 2u);
  EXPECT_EQ(LI.depth(1), 1);  // h1
  EXPECT_EQ(LI.depth(3), 2);  // inner
  EXPECT_EQ(LI.depth(5), 0);  // exit
}

TEST(CriticalEdges, SplitsExactlyTheCriticalOnes) {
  Function F = parseFunctionOrDie(R"(
    func f(p) {
    entry:
      br p, a, join
    a:
      br p > 1, join, other
    other:
      jmp join
    join:
      ret p
    }
  )");
  // Critical edges: entry->join and a->join.
  Cfg Before(F);
  unsigned NumCritical = 0;
  for (auto [U, V] : Before.edges())
    NumCritical += Before.isCriticalEdge(U, V);
  EXPECT_EQ(NumCritical, 2u);
  EXPECT_EQ(splitCriticalEdges(F), 2u);
  Cfg After(F);
  for (auto [U, V] : After.edges())
    EXPECT_FALSE(After.isCriticalEdge(U, V));
  std::string Error;
  EXPECT_TRUE(verifyFunction(F, Error)) << Error;
}

TEST(CriticalEdges, DegenerateBranchNormalized) {
  Function F = parseFunctionOrDie(R"(
    func f(p) {
    entry:
      br p, j, j
    j:
      ret p
    }
  )");
  EXPECT_EQ(normalizeDegenerateBranches(F), 1u);
  EXPECT_EQ(F.Blocks[0].terminator().Kind, StmtKind::Jump);
}

TEST(CriticalEdges, RandomProgramsEndCritFree) {
  for (uint64_t Seed = 40; Seed <= 48; ++Seed) {
    GeneratorConfig Cfg0;
    Function F = generateProgram(Seed, Cfg0);
    splitCriticalEdges(F);
    Cfg C(F);
    for (auto [U, V] : C.edges())
      ASSERT_FALSE(C.isCriticalEdge(U, V)) << "seed " << Seed;
    std::string Error;
    ASSERT_TRUE(verifyFunction(F, Error)) << Error;
  }
}

TEST(LoopRestructure, WhileBecomesBottomTested) {
  Function F = parseFunctionOrDie(R"(
    func f(n) {
    entry:
      i = 0
      jmp h
    h:
      t = i < n
      br t, body, exit
    body:
      i = i + 1
      jmp h
    exit:
      ret i
    }
  )");
  EXPECT_EQ(restructureWhileLoops(F), 1u);
  std::string Error;
  ASSERT_TRUE(verifyFunction(F, Error)) << Error;
  // After the transformation the loop {body, h} is bottom-tested: its
  // header is the body.
  Cfg C(F);
  DomTree DT = DomTree::buildDominators(C);
  LoopInfo LI(C, DT);
  ASSERT_EQ(LI.loops().size(), 1u);
  EXPECT_EQ(F.Blocks[LI.loops()[0].Header].Label, "body");
}

TEST(LoopRestructure, PreservesSemantics) {
  for (uint64_t Seed = 60; Seed <= 72; ++Seed) {
    GeneratorConfig Cfg0;
    Function F = generateProgram(Seed, Cfg0);
    Function R = F;
    restructureWhileLoops(R);
    std::string Error;
    ASSERT_TRUE(verifyFunction(R, Error)) << Error;
    for (int64_t Arg = -2; Arg <= 2; ++Arg) {
      std::vector<int64_t> Args(F.Params.size(), Arg * 17 + 3);
      ExecResult A = interpret(F, Args);
      ExecResult B = interpret(R, Args);
      ASSERT_TRUE(A.sameObservableBehavior(B))
          << "seed " << Seed << " arg " << Arg;
      // Same dynamic computations too: pure duplication of a test block.
      ASSERT_EQ(A.DynamicComputations, B.DynamicComputations);
    }
  }
}

TEST(DataFlow, ReachingLikeUnionProblem) {
  // A tiny forward union problem: "block B executed-after entry" facts.
  Function F = irregularCfg();
  Cfg C(F);
  DataFlowProblem P;
  P.Dir = DataFlowProblem::Direction::Forward;
  P.MeetOp = DataFlowProblem::Meet::Union;
  P.NumBits = C.numBlocks();
  P.Boundary = BitVector(P.NumBits, false);
  P.Gen.assign(C.numBlocks(), BitVector(P.NumBits, false));
  P.Kill.assign(C.numBlocks(), BitVector(P.NumBits, false));
  for (unsigned B = 0; B != C.numBlocks(); ++B)
    P.Gen[B].set(B);
  DataFlowResult R = solveDataFlow(C, P);
  // f (6) is reachable from everything.
  for (unsigned B = 0; B != C.numBlocks(); ++B)
    EXPECT_TRUE(R.In[6].test(B) || B == 6);
  // entry IN is boundary-empty.
  EXPECT_EQ(R.In[0].count(), 0u);
}

TEST(LoopRestructure, MultiExitCycleTerminates) {
  // Every block of this 3-cycle tests-and-exits: rotating the loop walks
  // the header around the cycle; the per-header guard bound must stop
  // the transformation after each block has been guarded once.
  Function F = parseFunctionOrDie(R"(
    func f(p) {
    entry:
      jmp a
    a:
      br p, b, out1
    b:
      br p > 1, c, out2
    c:
      br p > 2, a, out3
    out1:
      ret 1
    out2:
      ret 2
    out3:
      ret 3
    }
  )");
  unsigned N = restructureWhileLoops(F);
  EXPECT_LE(N, 3u); // at most one guard per original header
  std::string Error;
  ASSERT_TRUE(verifyFunction(F, Error)) << Error;
  Function Orig = parseFunctionOrDie(R"(
    func f(p) {
    entry:
      jmp a
    a:
      br p, b, out1
    b:
      br p > 1, c, out2
    c:
      br p > 2, a, out3
    out1:
      ret 1
    out2:
      ret 2
    out3:
      ret 3
    }
  )");
  for (int64_t P : {0, 1, 2, 3})
    EXPECT_EQ(interpret(F, {P}).ReturnValue,
              interpret(Orig, {P}).ReturnValue);
}

TEST(Cfg, RemoveUnreachableDropsPhiArgsOfDeadPreds) {
  // The join's phi has an argument from a block that becomes
  // unreachable; removal must drop exactly that argument.
  Function F = parseFunctionOrDie(R"(
    func f(p) {
    entry:
      br p#1, t, j
    t:
      x#1 = p#1 + 1
      jmp j
    dead:
      jmp j
    j:
      x#2 = phi [entry: p#1] [t: x#1] [dead: p#1]
      ret x#2
    }
  )");
  // 'dead' is unreachable; its phi argument must vanish with it.
  EXPECT_EQ(removeUnreachableBlocks(F), 1u);
  const Stmt &Phi = F.Blocks[F.numBlocks() - 1].Stmts[0];
  ASSERT_EQ(Phi.Kind, StmtKind::Phi);
  EXPECT_EQ(Phi.PhiArgs.size(), 2u);
  std::string Error;
  EXPECT_TRUE(verifyFunction(F, Error)) << Error;
  EXPECT_EQ(interpret(F, {0}).ReturnValue, 0);
  EXPECT_EQ(interpret(F, {4}).ReturnValue, 5);
}

TEST(LiveRangesOnGenerated, SlotsAreConsistentWithUses) {
  // Every used value must have at least one live slot; never-used defs
  // may have zero.
  GeneratorConfig Cfg0;
  Function F = generateProgram(2024, Cfg0);
  prepareFunction(F);
  constructSsa(F);
  LiveRanges LR(F);
  for (const BasicBlock &BB : F.Blocks) {
    for (const Stmt &S : BB.Stmts) {
      auto Check = [&](const Operand &O) {
        if (O.isVar()) {
          EXPECT_GE(LR.liveSlots(O.Var, O.Version), 1u)
              << F.varName(O.Var) << "#" << O.Version;
        }
      };
      if (S.Kind == StmtKind::Compute) {
        Check(S.Src0);
        Check(S.Src1);
      } else if (S.Kind == StmtKind::Ret) {
        Check(S.Src0);
      }
    }
  }
}
