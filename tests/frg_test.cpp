//===- tests/frg_test.cpp - FRG construction (steps 1-2) tests ------------------===//

#include "analysis/Cfg.h"
#include "analysis/DomTree.h"
#include "ir/Parser.h"
#include "pre/ExprKey.h"
#include "pre/Frg.h"
#include "ssa/SsaConstruction.h"

#include <gtest/gtest.h>

using namespace specpre;

namespace {

/// Helper owning the analyses an Frg needs.
struct FrgFixture {
  Function F;
  Cfg C;
  DomTree DT;

  explicit FrgFixture(Function Fn)
      : F(std::move(Fn)), C((constructSsaIfNeeded(F), F)),
        DT(DomTree::buildDominators(C)) {}

  static Function &constructSsaIfNeeded(Function &F) {
    if (!F.IsSSA)
      constructSsa(F);
    return F;
  }

  ExprKey key(const std::string &LName, Opcode Op, const std::string &RName) {
    ExprKey K;
    K.Op = Op;
    K.L.IsConst = false;
    K.L.Var = F.findVar(LName);
    K.R.IsConst = false;
    K.R.Var = F.findVar(RName);
    return K;
  }
};

} // namespace

TEST(ExprKey, CollectsLexicalCandidates) {
  Function F = parseFunctionOrDie(R"(
    func f(a, b) {
    entry:
      x = a + b
      y = a + b
      z = x * y
      w = 3 + 4
      ret z
    }
  )");
  std::vector<ExprKey> Keys = collectCandidateExprs(F);
  // a+b (once, deduped), x*y; 3+4 is constant-folding territory.
  ASSERT_EQ(Keys.size(), 2u);
  EXPECT_EQ(Keys[0].toString(F), "a + b");
  EXPECT_EQ(Keys[1].toString(F), "x * y");
}

TEST(Frg, DiamondPartialRedundancy) {
  // The textbook strictly-partial redundancy: computed in one arm and
  // after the join.
  FrgFixture Fx(parseFunctionOrDie(R"(
    func f(a, b, p) {
    entry:
      br p, t, e
    t:
      x = a + b
      jmp j
    e:
      y = 1
      jmp j
    j:
      z = a + b
      ret z
    }
  )"));
  Frg G(Fx.F, Fx.C, Fx.DT, Fx.key("a", Opcode::Add, "b"));
  ASSERT_EQ(G.reals().size(), 2u);
  ASSERT_EQ(G.phis().size(), 1u);
  const PhiOcc &P = G.phis()[0];
  EXPECT_EQ(Fx.F.Blocks[P.Block].Label, "j");
  ASSERT_EQ(P.Operands.size(), 2u);
  // Operand from 't' carries the computed value (real use); from 'e' ⊥.
  const PhiOperand *FromT = nullptr, *FromE = nullptr;
  for (const PhiOperand &Op : P.Operands) {
    if (Fx.F.Blocks[Op.Pred].Label == "t")
      FromT = &Op;
    else
      FromE = &Op;
  }
  ASSERT_NE(FromT, nullptr);
  ASSERT_NE(FromE, nullptr);
  EXPECT_FALSE(FromT->isBottom());
  EXPECT_TRUE(FromT->HasRealUse);
  EXPECT_TRUE(FromE->isBottom());
  // The occurrence in 'j' belongs to the Φ's class.
  const RealOcc *InJ = nullptr;
  for (const RealOcc &R : G.reals())
    if (Fx.F.Blocks[R.Block].Label == "j")
      InJ = &R;
  ASSERT_NE(InJ, nullptr);
  EXPECT_EQ(InJ->Class, P.Class);
  EXPECT_TRUE(InJ->Def.isPhi());
  EXPECT_FALSE(InJ->RgExcluded);
}

TEST(Frg, FullRedundancyMarkedRgExcluded) {
  FrgFixture Fx(parseFunctionOrDie(R"(
    func f(a, b) {
    entry:
      x = a + b
      y = a + b
      ret y
    }
  )"));
  Frg G(Fx.F, Fx.C, Fx.DT, Fx.key("a", Opcode::Add, "b"));
  ASSERT_EQ(G.reals().size(), 2u);
  EXPECT_FALSE(G.reals()[0].RgExcluded);
  EXPECT_TRUE(G.reals()[1].RgExcluded);
  EXPECT_EQ(G.reals()[0].Class, G.reals()[1].Class);
  EXPECT_TRUE(G.phis().empty());
}

TEST(Frg, OperandRedefinitionStartsNewClass) {
  FrgFixture Fx(parseFunctionOrDie(R"(
    func f(a, b) {
    entry:
      x = a + b
      a = a + 1
      y = a + b
      ret y
    }
  )"));
  Frg G(Fx.F, Fx.C, Fx.DT, Fx.key("a", Opcode::Add, "b"));
  ASSERT_EQ(G.reals().size(), 2u);
  EXPECT_NE(G.reals()[0].Class, G.reals()[1].Class);
  EXPECT_FALSE(G.reals()[1].RgExcluded);
}

TEST(Frg, OperandPhiForcesExpressionPhi) {
  // A variable phi for an operand at the join forces an expression Φ
  // there even though only one arm computes.
  FrgFixture Fx(parseFunctionOrDie(R"(
    func f(a, b, p) {
    entry:
      x = a + b
      br p, t, e
    t:
      a = a * 2
      jmp j
    e:
      jmp j
    j:
      z = a + b
      ret z
    }
  )"));
  Frg G(Fx.F, Fx.C, Fx.DT, Fx.key("a", Opcode::Add, "b"));
  ASSERT_EQ(G.phis().size(), 1u);
  const PhiOcc &P = G.phis()[0];
  EXPECT_EQ(Fx.F.Blocks[P.Block].Label, "j");
  // The arm that redefined 'a' provides ⊥; the other carries the entry
  // computation (real use).
  for (const PhiOperand &Op : P.Operands) {
    if (Fx.F.Blocks[Op.Pred].Label == "t")
      EXPECT_TRUE(Op.isBottom());
    else
      EXPECT_TRUE(Op.HasRealUse);
  }
  // The occurrence in j computes the merged value: it uses the Φ class.
  ASSERT_EQ(G.reals().size(), 2u);
  EXPECT_EQ(G.reals()[1].Class, P.Class);
}

TEST(Frg, LoopInvariantPhiAtHeader) {
  FrgFixture Fx(parseFunctionOrDie(R"(
    func f(a, b, n) {
    entry:
      i = 0
      jmp h
    h:
      t = i < n
      br t, body, exit
    body:
      x = a + b
      i = i + 1
      jmp h
    exit:
      ret i
    }
  )"));
  Frg G(Fx.F, Fx.C, Fx.DT, Fx.key("a", Opcode::Add, "b"));
  // Φ at the loop header 'h': entry operand ⊥, back-edge operand has a
  // real use of the same class.
  ASSERT_EQ(G.phis().size(), 1u);
  const PhiOcc &P = G.phis()[0];
  EXPECT_EQ(Fx.F.Blocks[P.Block].Label, "h");
  int NumBottom = 0, NumRealUse = 0;
  for (const PhiOperand &Op : P.Operands) {
    NumBottom += Op.isBottom();
    NumRealUse += Op.HasRealUse;
  }
  EXPECT_EQ(NumBottom, 1);
  EXPECT_EQ(NumRealUse, 1);
  // The in-loop occurrence is strictly partially redundant: defined by
  // the Φ at the header.
  ASSERT_EQ(G.reals().size(), 1u);
  EXPECT_EQ(G.reals()[0].Class, P.Class);
}

TEST(Frg, ConstOperandExpression) {
  FrgFixture Fx(parseFunctionOrDie(R"(
    func f(a, p) {
    entry:
      br p, t, e
    t:
      x = a * 4
      jmp j
    e:
      jmp j
    j:
      y = a * 4
      ret y
    }
  )"));
  ExprKey K;
  K.Op = Opcode::Mul;
  K.L.IsConst = false;
  K.L.Var = Fx.F.findVar("a");
  K.R.IsConst = true;
  K.R.Const = 4;
  Frg G(Fx.F, Fx.C, Fx.DT, K);
  ASSERT_EQ(G.phis().size(), 1u);
  ASSERT_EQ(G.reals().size(), 2u);
  EXPECT_EQ(G.reals()[1].Class, G.phis()[0].Class);
}

TEST(Frg, ClassCountMatchesDefs) {
  FrgFixture Fx(parseFunctionOrDie(R"(
    func f(a, b, p) {
    entry:
      x = a + b
      br p, t, e
    t:
      a = a + 1
      y = a + b
      jmp j
    e:
      jmp j
    j:
      z = a + b
      ret z
    }
  )"));
  Frg G(Fx.F, Fx.C, Fx.DT, Fx.key("a", Opcode::Add, "b"));
  // Classes: entry occurrence, t occurrence (after kill), Φ at j.
  EXPECT_EQ(G.numClasses(), 3);
  for (int C = 0; C != G.numClasses(); ++C)
    EXPECT_FALSE(G.classDef(C).isNone() && false); // classDef callable
}
