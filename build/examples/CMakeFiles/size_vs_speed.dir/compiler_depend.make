# Empty compiler generated dependencies file for size_vs_speed.
# This may be replaced when dependencies are built.
