file(REMOVE_RECURSE
  "CMakeFiles/size_vs_speed.dir/size_vs_speed.cpp.o"
  "CMakeFiles/size_vs_speed.dir/size_vs_speed.cpp.o.d"
  "size_vs_speed"
  "size_vs_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/size_vs_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
