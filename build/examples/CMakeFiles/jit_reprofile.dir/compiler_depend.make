# Empty compiler generated dependencies file for jit_reprofile.
# This may be replaced when dependencies are built.
