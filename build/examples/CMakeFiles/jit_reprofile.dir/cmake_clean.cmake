file(REMOVE_RECURSE
  "CMakeFiles/jit_reprofile.dir/jit_reprofile.cpp.o"
  "CMakeFiles/jit_reprofile.dir/jit_reprofile.cpp.o.d"
  "jit_reprofile"
  "jit_reprofile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jit_reprofile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
