# Empty dependencies file for profile_mismatch.
# This may be replaced when dependencies are built.
