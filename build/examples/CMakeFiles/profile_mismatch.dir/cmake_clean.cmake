file(REMOVE_RECURSE
  "CMakeFiles/profile_mismatch.dir/profile_mismatch.cpp.o"
  "CMakeFiles/profile_mismatch.dir/profile_mismatch.cpp.o.d"
  "profile_mismatch"
  "profile_mismatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_mismatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
