# Empty compiler generated dependencies file for liveranges_test.
# This may be replaced when dependencies are built.
