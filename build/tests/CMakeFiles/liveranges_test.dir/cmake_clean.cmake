file(REMOVE_RECURSE
  "CMakeFiles/liveranges_test.dir/liveranges_test.cpp.o"
  "CMakeFiles/liveranges_test.dir/liveranges_test.cpp.o.d"
  "liveranges_test"
  "liveranges_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liveranges_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
