file(REMOVE_RECURSE
  "CMakeFiles/mcpre_test.dir/mcpre_test.cpp.o"
  "CMakeFiles/mcpre_test.dir/mcpre_test.cpp.o.d"
  "mcpre_test"
  "mcpre_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcpre_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
