# Empty dependencies file for mcpre_test.
# This may be replaced when dependencies are built.
