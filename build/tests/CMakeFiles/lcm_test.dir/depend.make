# Empty dependencies file for lcm_test.
# This may be replaced when dependencies are built.
