# Empty compiler generated dependencies file for frg_test.
# This may be replaced when dependencies are built.
