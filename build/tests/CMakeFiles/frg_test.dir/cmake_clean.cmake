file(REMOVE_RECURSE
  "CMakeFiles/frg_test.dir/frg_test.cpp.o"
  "CMakeFiles/frg_test.dir/frg_test.cpp.o.d"
  "frg_test"
  "frg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
