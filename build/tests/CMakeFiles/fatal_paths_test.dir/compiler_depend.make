# Empty compiler generated dependencies file for fatal_paths_test.
# This may be replaced when dependencies are built.
