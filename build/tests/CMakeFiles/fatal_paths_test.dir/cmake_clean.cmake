file(REMOVE_RECURSE
  "CMakeFiles/fatal_paths_test.dir/fatal_paths_test.cpp.o"
  "CMakeFiles/fatal_paths_test.dir/fatal_paths_test.cpp.o.d"
  "fatal_paths_test"
  "fatal_paths_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fatal_paths_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
