# Empty dependencies file for dotexport_test.
# This may be replaced when dependencies are built.
