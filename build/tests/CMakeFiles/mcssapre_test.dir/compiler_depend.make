# Empty compiler generated dependencies file for mcssapre_test.
# This may be replaced when dependencies are built.
