file(REMOVE_RECURSE
  "CMakeFiles/mcssapre_test.dir/mcssapre_test.cpp.o"
  "CMakeFiles/mcssapre_test.dir/mcssapre_test.cpp.o.d"
  "mcssapre_test"
  "mcssapre_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcssapre_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
