file(REMOVE_RECURSE
  "CMakeFiles/finalize_test.dir/finalize_test.cpp.o"
  "CMakeFiles/finalize_test.dir/finalize_test.cpp.o.d"
  "finalize_test"
  "finalize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finalize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
