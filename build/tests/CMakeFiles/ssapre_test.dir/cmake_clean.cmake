file(REMOVE_RECURSE
  "CMakeFiles/ssapre_test.dir/ssapre_test.cpp.o"
  "CMakeFiles/ssapre_test.dir/ssapre_test.cpp.o.d"
  "ssapre_test"
  "ssapre_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssapre_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
