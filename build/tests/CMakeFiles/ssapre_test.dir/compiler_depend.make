# Empty compiler generated dependencies file for ssapre_test.
# This may be replaced when dependencies are built.
