# Empty compiler generated dependencies file for fig10_cfp_normalized.
# This may be replaced when dependencies are built.
