file(REMOVE_RECURSE
  "../bench/fig10_cfp_normalized"
  "../bench/fig10_cfp_normalized.pdb"
  "CMakeFiles/fig10_cfp_normalized.dir/fig10_cfp_normalized.cpp.o"
  "CMakeFiles/fig10_cfp_normalized.dir/fig10_cfp_normalized.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cfp_normalized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
