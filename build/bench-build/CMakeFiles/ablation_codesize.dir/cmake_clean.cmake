file(REMOVE_RECURSE
  "../bench/ablation_codesize"
  "../bench/ablation_codesize.pdb"
  "CMakeFiles/ablation_codesize.dir/ablation_codesize.cpp.o"
  "CMakeFiles/ablation_codesize.dir/ablation_codesize.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_codesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
