file(REMOVE_RECURSE
  "../bench/ablation_lifetime"
  "../bench/ablation_lifetime.pdb"
  "CMakeFiles/ablation_lifetime.dir/ablation_lifetime.cpp.o"
  "CMakeFiles/ablation_lifetime.dir/ablation_lifetime.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
