file(REMOVE_RECURSE
  "../bench/mincut_algorithms"
  "../bench/mincut_algorithms.pdb"
  "CMakeFiles/mincut_algorithms.dir/mincut_algorithms.cpp.o"
  "CMakeFiles/mincut_algorithms.dir/mincut_algorithms.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mincut_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
