# Empty dependencies file for mincut_algorithms.
# This may be replaced when dependencies are built.
