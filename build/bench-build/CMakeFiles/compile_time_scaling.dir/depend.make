# Empty dependencies file for compile_time_scaling.
# This may be replaced when dependencies are built.
