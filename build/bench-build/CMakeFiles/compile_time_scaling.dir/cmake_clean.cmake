file(REMOVE_RECURSE
  "../bench/compile_time_scaling"
  "../bench/compile_time_scaling.pdb"
  "CMakeFiles/compile_time_scaling.dir/compile_time_scaling.cpp.o"
  "CMakeFiles/compile_time_scaling.dir/compile_time_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compile_time_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
