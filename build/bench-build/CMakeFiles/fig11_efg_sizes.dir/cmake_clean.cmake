file(REMOVE_RECURSE
  "../bench/fig11_efg_sizes"
  "../bench/fig11_efg_sizes.pdb"
  "CMakeFiles/fig11_efg_sizes.dir/fig11_efg_sizes.cpp.o"
  "CMakeFiles/fig11_efg_sizes.dir/fig11_efg_sizes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_efg_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
