file(REMOVE_RECURSE
  "../bench/ablation_full_pipeline"
  "../bench/ablation_full_pipeline.pdb"
  "CMakeFiles/ablation_full_pipeline.dir/ablation_full_pipeline.cpp.o"
  "CMakeFiles/ablation_full_pipeline.dir/ablation_full_pipeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_full_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
