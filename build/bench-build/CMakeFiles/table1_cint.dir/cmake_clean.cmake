file(REMOVE_RECURSE
  "../bench/table1_cint"
  "../bench/table1_cint.pdb"
  "CMakeFiles/table1_cint.dir/table1_cint.cpp.o"
  "CMakeFiles/table1_cint.dir/table1_cint.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_cint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
