# Empty dependencies file for table1_cint.
# This may be replaced when dependencies are built.
