# Empty compiler generated dependencies file for ablation_node_vs_edge_profile.
# This may be replaced when dependencies are built.
