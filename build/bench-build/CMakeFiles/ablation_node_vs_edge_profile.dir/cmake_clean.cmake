file(REMOVE_RECURSE
  "../bench/ablation_node_vs_edge_profile"
  "../bench/ablation_node_vs_edge_profile.pdb"
  "CMakeFiles/ablation_node_vs_edge_profile.dir/ablation_node_vs_edge_profile.cpp.o"
  "CMakeFiles/ablation_node_vs_edge_profile.dir/ablation_node_vs_edge_profile.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_node_vs_edge_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
