# Empty dependencies file for fig9_cint_normalized.
# This may be replaced when dependencies are built.
