file(REMOVE_RECURSE
  "../bench/fig9_cint_normalized"
  "../bench/fig9_cint_normalized.pdb"
  "CMakeFiles/fig9_cint_normalized.dir/fig9_cint_normalized.cpp.o"
  "CMakeFiles/fig9_cint_normalized.dir/fig9_cint_normalized.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_cint_normalized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
