file(REMOVE_RECURSE
  "../bench/ablation_problem_size"
  "../bench/ablation_problem_size.pdb"
  "CMakeFiles/ablation_problem_size.dir/ablation_problem_size.cpp.o"
  "CMakeFiles/ablation_problem_size.dir/ablation_problem_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_problem_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
