file(REMOVE_RECURSE
  "../bench/table2_cfp"
  "../bench/table2_cfp.pdb"
  "CMakeFiles/table2_cfp.dir/table2_cfp.cpp.o"
  "CMakeFiles/table2_cfp.dir/table2_cfp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_cfp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
