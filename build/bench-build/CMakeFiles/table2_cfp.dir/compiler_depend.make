# Empty compiler generated dependencies file for table2_cfp.
# This may be replaced when dependencies are built.
