# Empty dependencies file for specpre.
# This may be replaced when dependencies are built.
