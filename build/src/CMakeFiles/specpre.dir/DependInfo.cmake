
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/Cfg.cpp" "src/CMakeFiles/specpre.dir/analysis/Cfg.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/analysis/Cfg.cpp.o.d"
  "/root/repo/src/analysis/CriticalEdges.cpp" "src/CMakeFiles/specpre.dir/analysis/CriticalEdges.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/analysis/CriticalEdges.cpp.o.d"
  "/root/repo/src/analysis/DataFlow.cpp" "src/CMakeFiles/specpre.dir/analysis/DataFlow.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/analysis/DataFlow.cpp.o.d"
  "/root/repo/src/analysis/DomTree.cpp" "src/CMakeFiles/specpre.dir/analysis/DomTree.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/analysis/DomTree.cpp.o.d"
  "/root/repo/src/analysis/DominanceFrontier.cpp" "src/CMakeFiles/specpre.dir/analysis/DominanceFrontier.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/analysis/DominanceFrontier.cpp.o.d"
  "/root/repo/src/analysis/LiveRanges.cpp" "src/CMakeFiles/specpre.dir/analysis/LiveRanges.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/analysis/LiveRanges.cpp.o.d"
  "/root/repo/src/analysis/LoopRestructure.cpp" "src/CMakeFiles/specpre.dir/analysis/LoopRestructure.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/analysis/LoopRestructure.cpp.o.d"
  "/root/repo/src/analysis/Loops.cpp" "src/CMakeFiles/specpre.dir/analysis/Loops.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/analysis/Loops.cpp.o.d"
  "/root/repo/src/interp/CostModel.cpp" "src/CMakeFiles/specpre.dir/interp/CostModel.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/interp/CostModel.cpp.o.d"
  "/root/repo/src/interp/Interpreter.cpp" "src/CMakeFiles/specpre.dir/interp/Interpreter.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/interp/Interpreter.cpp.o.d"
  "/root/repo/src/ir/Ir.cpp" "src/CMakeFiles/specpre.dir/ir/Ir.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/ir/Ir.cpp.o.d"
  "/root/repo/src/ir/IrBuilder.cpp" "src/CMakeFiles/specpre.dir/ir/IrBuilder.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/ir/IrBuilder.cpp.o.d"
  "/root/repo/src/ir/Parser.cpp" "src/CMakeFiles/specpre.dir/ir/Parser.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/ir/Parser.cpp.o.d"
  "/root/repo/src/ir/Printer.cpp" "src/CMakeFiles/specpre.dir/ir/Printer.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/ir/Printer.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/CMakeFiles/specpre.dir/ir/Verifier.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/ir/Verifier.cpp.o.d"
  "/root/repo/src/mincut/FlowNetwork.cpp" "src/CMakeFiles/specpre.dir/mincut/FlowNetwork.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/mincut/FlowNetwork.cpp.o.d"
  "/root/repo/src/mincut/MaxFlow.cpp" "src/CMakeFiles/specpre.dir/mincut/MaxFlow.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/mincut/MaxFlow.cpp.o.d"
  "/root/repo/src/mincut/MinCut.cpp" "src/CMakeFiles/specpre.dir/mincut/MinCut.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/mincut/MinCut.cpp.o.d"
  "/root/repo/src/opt/ConstantFold.cpp" "src/CMakeFiles/specpre.dir/opt/ConstantFold.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/opt/ConstantFold.cpp.o.d"
  "/root/repo/src/opt/CopyPropagation.cpp" "src/CMakeFiles/specpre.dir/opt/CopyPropagation.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/opt/CopyPropagation.cpp.o.d"
  "/root/repo/src/opt/DeadCodeElim.cpp" "src/CMakeFiles/specpre.dir/opt/DeadCodeElim.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/opt/DeadCodeElim.cpp.o.d"
  "/root/repo/src/opt/ValueNumbering.cpp" "src/CMakeFiles/specpre.dir/opt/ValueNumbering.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/opt/ValueNumbering.cpp.o.d"
  "/root/repo/src/pre/CodeMotion.cpp" "src/CMakeFiles/specpre.dir/pre/CodeMotion.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/pre/CodeMotion.cpp.o.d"
  "/root/repo/src/pre/DotExport.cpp" "src/CMakeFiles/specpre.dir/pre/DotExport.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/pre/DotExport.cpp.o.d"
  "/root/repo/src/pre/EdgeTransform.cpp" "src/CMakeFiles/specpre.dir/pre/EdgeTransform.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/pre/EdgeTransform.cpp.o.d"
  "/root/repo/src/pre/ExprKey.cpp" "src/CMakeFiles/specpre.dir/pre/ExprKey.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/pre/ExprKey.cpp.o.d"
  "/root/repo/src/pre/Finalize.cpp" "src/CMakeFiles/specpre.dir/pre/Finalize.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/pre/Finalize.cpp.o.d"
  "/root/repo/src/pre/Frg.cpp" "src/CMakeFiles/specpre.dir/pre/Frg.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/pre/Frg.cpp.o.d"
  "/root/repo/src/pre/FrgRename.cpp" "src/CMakeFiles/specpre.dir/pre/FrgRename.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/pre/FrgRename.cpp.o.d"
  "/root/repo/src/pre/Lcm.cpp" "src/CMakeFiles/specpre.dir/pre/Lcm.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/pre/Lcm.cpp.o.d"
  "/root/repo/src/pre/LexicalDataFlow.cpp" "src/CMakeFiles/specpre.dir/pre/LexicalDataFlow.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/pre/LexicalDataFlow.cpp.o.d"
  "/root/repo/src/pre/McPre.cpp" "src/CMakeFiles/specpre.dir/pre/McPre.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/pre/McPre.cpp.o.d"
  "/root/repo/src/pre/McSsaPre.cpp" "src/CMakeFiles/specpre.dir/pre/McSsaPre.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/pre/McSsaPre.cpp.o.d"
  "/root/repo/src/pre/PreDriver.cpp" "src/CMakeFiles/specpre.dir/pre/PreDriver.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/pre/PreDriver.cpp.o.d"
  "/root/repo/src/pre/PreStats.cpp" "src/CMakeFiles/specpre.dir/pre/PreStats.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/pre/PreStats.cpp.o.d"
  "/root/repo/src/pre/SsaPre.cpp" "src/CMakeFiles/specpre.dir/pre/SsaPre.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/pre/SsaPre.cpp.o.d"
  "/root/repo/src/profile/Profile.cpp" "src/CMakeFiles/specpre.dir/profile/Profile.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/profile/Profile.cpp.o.d"
  "/root/repo/src/ssa/SsaConstruction.cpp" "src/CMakeFiles/specpre.dir/ssa/SsaConstruction.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/ssa/SsaConstruction.cpp.o.d"
  "/root/repo/src/ssa/SsaDestruction.cpp" "src/CMakeFiles/specpre.dir/ssa/SsaDestruction.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/ssa/SsaDestruction.cpp.o.d"
  "/root/repo/src/support/Diagnostics.cpp" "src/CMakeFiles/specpre.dir/support/Diagnostics.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/support/Diagnostics.cpp.o.d"
  "/root/repo/src/support/Random.cpp" "src/CMakeFiles/specpre.dir/support/Random.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/support/Random.cpp.o.d"
  "/root/repo/src/workload/Evaluation.cpp" "src/CMakeFiles/specpre.dir/workload/Evaluation.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/workload/Evaluation.cpp.o.d"
  "/root/repo/src/workload/ProgramGenerator.cpp" "src/CMakeFiles/specpre.dir/workload/ProgramGenerator.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/workload/ProgramGenerator.cpp.o.d"
  "/root/repo/src/workload/SpecSuite.cpp" "src/CMakeFiles/specpre.dir/workload/SpecSuite.cpp.o" "gcc" "src/CMakeFiles/specpre.dir/workload/SpecSuite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
