file(REMOVE_RECURSE
  "libspecpre.a"
)
