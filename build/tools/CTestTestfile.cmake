# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_mcssapre_loop "/root/repo/build/tools/specpre-opt" "--strategy=mcssapre" "--train=3,4,64" "--run=5,6,32" "--stats" "/root/repo/tools/../examples/programs/loop.spre")
set_tests_properties(tool_mcssapre_loop PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_lcm_diamond "/root/repo/build/tools/specpre-opt" "--strategy=lcm" "--run=2,3,1" "--cleanup" "/root/repo/tools/../examples/programs/diamond.spre")
set_tests_properties(tool_lcm_diamond PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_rejects_bad_strategy "/root/repo/build/tools/specpre-opt" "--strategy=bogus" "/root/repo/tools/../examples/programs/diamond.spre")
set_tests_properties(tool_rejects_bad_strategy PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_dot_export "/root/repo/build/tools/specpre-opt" "--strategy=mcssapre" "--train=3,4,64" "--no-emit" "--dot-cfg=tool_cfg.dot" "--dot-frg=tool_frg.dot" "/root/repo/tools/../examples/programs/loop.spre")
set_tests_properties(tool_dot_export PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_size_objective "/root/repo/build/tools/specpre-opt" "--strategy=mcssapre" "--objective=size" "--train=3,4,64" "--run=3,4,64" "--no-emit" "/root/repo/tools/../examples/programs/loop.spre")
set_tests_properties(tool_size_objective PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_profile_roundtrip "sh" "-c" "/root/repo/build/tools/specpre-opt --strategy=mcssapre --train=3,4,64 --no-emit --profile-out=roundtrip.prof /root/repo/tools/../examples/programs/loop.spre && /root/repo/build/tools/specpre-opt --strategy=mcssapre --profile-in=roundtrip.prof --run=3,4,64 --no-emit /root/repo/tools/../examples/programs/loop.spre")
set_tests_properties(tool_profile_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_full_pipeline "/root/repo/build/tools/specpre-opt" "--strategy=mcssapre" "--train=3,4,64" "--run=7,9,32" "--gvn" "--cleanup" "--out-of-ssa" "--no-emit" "/root/repo/tools/../examples/programs/loop.spre")
set_tests_properties(tool_full_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
