# Empty dependencies file for specpre-opt.
# This may be replaced when dependencies are built.
