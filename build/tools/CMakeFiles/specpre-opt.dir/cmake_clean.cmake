file(REMOVE_RECURSE
  "CMakeFiles/specpre-opt.dir/specpre-opt.cpp.o"
  "CMakeFiles/specpre-opt.dir/specpre-opt.cpp.o.d"
  "specpre-opt"
  "specpre-opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specpre-opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
