//===- tools/specpre-serve.cpp - Compilation service daemon ---------------===//
//
// A long-lived compilation server over a Unix-domain socket:
//
//   specpre-serve --socket=PATH [options]
//
//     --socket=PATH          Unix-domain socket to listen on (required)
//     --jobs=N               compile-pipeline workers (0 = all cores)
//     --request-workers=N    concurrent requests in execution (default 2)
//     --cache-dir=PATH       shared on-disk cache directory
//     --cache=on|off         in-process compile cache (default on)
//     --cache-max-entries=N  in-memory LRU capacity (default 4096)
//     --cache-max-disk-mb=N  disk-tier size cap; LRU-evicted (0 = unbounded)
//     --cache-durable=on|off fsync entries + directory before each publish
//                            rename (default off; docs/CACHING.md)
//     --cache-breaker-threshold=N    consecutive disk failures that open
//                            the disk-tier circuit breaker (0 = disabled,
//                            default 8)
//     --cache-breaker-cooldown-ms=N  open-breaker cooldown before
//                            half-open probes (default 2000)
//     --cache-scrub-interval-ms=N    background checksum scrubber cadence
//                            (0 = off); corrupt entries are quarantined
//     --cache-scrub-bytes-per-sec=N  scrub read-rate ceiling so scrubbing
//                            never competes with compiles (default 4 MiB/s)
//     --io-timeout-ms=N      per-frame socket read/write budget (default 10000)
//     --max-requests=N       exit after N compile requests (0 = forever)
//     --metrics-out=PATH     write merged pipeline metrics JSON on shutdown
//     --isolate=MODE         in-process (default) or process: fork one
//                            sandbox worker per request so a crashing
//                            compile never takes the daemon down
//     --request-deadline-ms=N  per-request wall-clock deadline (0 = none)
//     --worker-mem-mb=N      RLIMIT_DATA cap for sandbox workers (0 = none)
//     --quarantine-after=N   worker deaths before a request is quarantined
//     --queue-depth=N        bounded request queue; beyond it clients get a
//                            'B' (busy) frame (0 = unbounded)
//     --pidfile=PATH         write the daemon pid; removed on clean exit
//     --inject-faults=SPEC   deterministic chaos (site:rate[:seed], for the
//                            chaos smoke tests — see docs/ROBUSTNESS.md)
//
// Clients connect with `specpre-opt --connect=PATH <file>` (or any
// speaker of the framed protocol in docs/SERVING.md). SIGTERM/SIGINT
// drain in-flight requests, flush their responses, then exit 0. The
// daemon refuses to start when another live daemon already serves the
// socket path; a stale socket file from a dead daemon is replaced.
//
//===----------------------------------------------------------------------===//

#include "pre/CompileService.h"
#include "support/CrashContext.h"
#include "support/FaultInjector.h"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <thread>

#include <unistd.h>

using namespace specpre;

namespace {

std::sig_atomic_t volatile StopSignal = 0;

void onStopSignal(int) { StopSignal = 1; }

struct ServeOptions {
  ServeServer::Config Server;
  std::string MetricsOutPath;
  std::string PidfilePath;
  std::string InjectFaults;
};

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s --socket=PATH [--jobs=N] [--request-workers=N]\n"
               "          [--cache-dir=PATH] [--cache=on|off]\n"
               "          [--cache-max-entries=N] [--cache-max-disk-mb=N]\n"
               "          [--cache-durable=on|off]\n"
               "          [--cache-breaker-threshold=N]\n"
               "          [--cache-breaker-cooldown-ms=N]\n"
               "          [--cache-scrub-interval-ms=N]\n"
               "          [--cache-scrub-bytes-per-sec=N]\n"
               "          [--io-timeout-ms=N] [--max-requests=N]\n"
               "          [--metrics-out=PATH]\n"
               "          [--isolate=in-process|process]\n"
               "          [--request-deadline-ms=N] [--worker-mem-mb=N]\n"
               "          [--quarantine-after=N] [--queue-depth=N]\n"
               "          [--pidfile=PATH] [--inject-faults=SPEC]\n",
               Argv0);
  return 2;
}

bool parseArgs(int Argc, char **Argv, ServeOptions &Opts) {
  for (int I = 1; I != Argc; ++I) {
    std::string A = Argv[I];
    auto Value = [&](const char *Prefix) -> std::optional<std::string> {
      size_t N = std::strlen(Prefix);
      if (A.rfind(Prefix, 0) == 0)
        return A.substr(N);
      return std::nullopt;
    };
    auto BadInt = [&](const char *Flag, const std::string &V) {
      std::fprintf(stderr, "error: bad %s value '%s'\n", Flag, V.c_str());
      return false;
    };
    if (auto V = Value("--socket=")) {
      Opts.Server.SocketPath = *V;
    } else if (auto V = Value("--jobs=")) {
      try {
        Opts.Server.Service.Jobs = static_cast<unsigned>(std::stoul(*V));
      } catch (...) {
        return BadInt("--jobs", *V);
      }
    } else if (auto V = Value("--request-workers=")) {
      try {
        Opts.Server.Service.RequestWorkers =
            static_cast<unsigned>(std::stoul(*V));
      } catch (...) {
        return BadInt("--request-workers", *V);
      }
    } else if (auto V = Value("--cache-dir=")) {
      Opts.Server.Service.CacheDir = *V;
    } else if (auto V = Value("--cache=")) {
      if (*V == "on")
        Opts.Server.Service.Mode = CacheMode::On;
      else if (*V == "off")
        Opts.Server.Service.Mode = CacheMode::Off;
      else {
        std::fprintf(stderr, "error: bad --cache mode '%s'\n", V->c_str());
        return false;
      }
    } else if (auto V = Value("--cache-max-entries=")) {
      try {
        Opts.Server.Service.CacheMaxEntries = std::stoull(*V);
      } catch (...) {
        return BadInt("--cache-max-entries", *V);
      }
    } else if (auto V = Value("--cache-max-disk-mb=")) {
      try {
        Opts.Server.Service.CacheMaxDiskBytes =
            std::stoull(*V) * 1024 * 1024;
      } catch (...) {
        return BadInt("--cache-max-disk-mb", *V);
      }
    } else if (auto V = Value("--cache-durable=")) {
      if (*V == "on")
        Opts.Server.Service.CacheDurable = true;
      else if (*V == "off")
        Opts.Server.Service.CacheDurable = false;
      else {
        std::fprintf(stderr, "error: bad --cache-durable value '%s'\n",
                     V->c_str());
        return false;
      }
    } else if (auto V = Value("--cache-breaker-threshold=")) {
      try {
        Opts.Server.Service.CacheBreakerThreshold = std::stoull(*V);
      } catch (...) {
        return BadInt("--cache-breaker-threshold", *V);
      }
    } else if (auto V = Value("--cache-breaker-cooldown-ms=")) {
      try {
        Opts.Server.Service.CacheBreakerCooldownMs = std::stoull(*V);
      } catch (...) {
        return BadInt("--cache-breaker-cooldown-ms", *V);
      }
    } else if (auto V = Value("--cache-scrub-interval-ms=")) {
      try {
        Opts.Server.Service.CacheScrubIntervalMs = std::stoull(*V);
      } catch (...) {
        return BadInt("--cache-scrub-interval-ms", *V);
      }
    } else if (auto V = Value("--cache-scrub-bytes-per-sec=")) {
      try {
        Opts.Server.Service.CacheScrubBytesPerSec = std::stoull(*V);
      } catch (...) {
        return BadInt("--cache-scrub-bytes-per-sec", *V);
      }
    } else if (auto V = Value("--io-timeout-ms=")) {
      try {
        Opts.Server.IoTimeoutMs = std::stoi(*V);
      } catch (...) {
        return BadInt("--io-timeout-ms", *V);
      }
    } else if (auto V = Value("--max-requests=")) {
      try {
        Opts.Server.MaxRequests = std::stoull(*V);
      } catch (...) {
        return BadInt("--max-requests", *V);
      }
    } else if (auto V = Value("--metrics-out=")) {
      Opts.MetricsOutPath = *V;
    } else if (auto V = Value("--isolate=")) {
      if (*V == "in-process")
        Opts.Server.Service.Isolation = IsolationMode::InProcess;
      else if (*V == "process")
        Opts.Server.Service.Isolation = IsolationMode::Process;
      else {
        std::fprintf(stderr, "error: bad --isolate mode '%s'\n", V->c_str());
        return false;
      }
    } else if (auto V = Value("--request-deadline-ms=")) {
      try {
        Opts.Server.Service.RequestDeadlineMs = std::stoull(*V);
      } catch (...) {
        return BadInt("--request-deadline-ms", *V);
      }
    } else if (auto V = Value("--worker-mem-mb=")) {
      try {
        Opts.Server.Service.WorkerMemLimitMb = std::stoull(*V);
      } catch (...) {
        return BadInt("--worker-mem-mb", *V);
      }
    } else if (auto V = Value("--quarantine-after=")) {
      try {
        Opts.Server.Service.QuarantineAfter =
            static_cast<unsigned>(std::stoul(*V));
      } catch (...) {
        return BadInt("--quarantine-after", *V);
      }
    } else if (auto V = Value("--queue-depth=")) {
      try {
        Opts.Server.Service.QueueMaxDepth = std::stoull(*V);
      } catch (...) {
        return BadInt("--queue-depth", *V);
      }
    } else if (auto V = Value("--pidfile=")) {
      Opts.PidfilePath = *V;
    } else if (auto V = Value("--inject-faults=")) {
      Opts.InjectFaults = *V;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", A.c_str());
      return false;
    }
  }
  return !Opts.Server.SocketPath.empty();
}

} // namespace

int main(int Argc, char **Argv) {
  installCrashSignalHandlers();
  ServeOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return usage(Argv[0]);

  std::signal(SIGTERM, onStopSignal);
  std::signal(SIGINT, onStopSignal);

  if (!Opts.InjectFaults.empty()) {
    if (Status St = configureFaultInjection(Opts.InjectFaults); !St) {
      std::fprintf(stderr, "error: --inject-faults: %s\n",
                   St.toString().c_str());
      return 1;
    }
  }

  ServeServer Server(Opts.Server);
  if (Status St = Server.start(); !St) {
    std::fprintf(stderr, "error: %s\n", St.toString().c_str());
    return 1;
  }
  if (!Opts.PidfilePath.empty()) {
    // Written only after start() succeeded: a pidfile must never point
    // at a daemon that lost the socket-path race and exited.
    std::ofstream Pid(Opts.PidfilePath);
    if (!Pid) {
      std::fprintf(stderr, "error: cannot write pidfile '%s'\n",
                   Opts.PidfilePath.c_str());
      Server.stop();
      return 1;
    }
    Pid << ::getpid() << "\n";
  }
  std::fprintf(stderr, "specpre-serve: listening on %s (jobs=%u)\n",
               Opts.Server.SocketPath.c_str(), Server.service().jobs());

  // The signal handler only sets a flag; the main thread polls it so
  // the actual teardown (joins, queue drain, socket closes) runs in
  // normal context, never inside a handler.
  while (!StopSignal && !Server.servedEnough())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::fprintf(stderr, "specpre-serve: draining and shutting down\n");
  Server.stop();
  if (!Opts.PidfilePath.empty())
    std::remove(Opts.PidfilePath.c_str());

  PipelineMetrics M = Server.service().metricsSnapshot();
  if (!Opts.MetricsOutPath.empty()) {
    std::ofstream Out(Opts.MetricsOutPath);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   Opts.MetricsOutPath.c_str());
      return 1;
    }
    char Header[64];
    std::snprintf(Header, sizeof(Header), "{\"jobs\": %u,\n\"steps\": ",
                  Server.service().jobs());
    Out << Header << M.toJson() << ",\n\"robustness\": "
        << M.robustnessToJson() << ",\n\"arena\": " << M.arenaToJson()
        << ",\n\"lospre\": " << M.lospreToJson()
        << ",\n\"cache\": " << M.cacheToJson()
        << ",\n\"service\": " << M.serviceToJson() << "}\n";
  }
  const ServiceCounters &S = M.service();
  std::fprintf(stderr,
               "specpre-serve: served=%llu ok=%llu failed=%llu "
               "degraded=%llu queue_peak=%llu\n",
               static_cast<unsigned long long>(S.RequestsReceived),
               static_cast<unsigned long long>(S.RequestsSucceeded),
               static_cast<unsigned long long>(S.RequestsFailed),
               static_cast<unsigned long long>(S.RequestsDegraded),
               static_cast<unsigned long long>(S.QueueDepthPeak));
  return 0;
}
