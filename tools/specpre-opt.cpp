//===- tools/specpre-opt.cpp - Command-line PRE driver --------------------------===//
//
// The command-line face of the library:
//
//   specpre-opt [options] <file>
//
//     --strategy=<ssapre|ssapresp|mcssapre|lospre|mcpre|lcm|none>
//                           (default mcssapre)
//     --lospre-max-width=N  leg D's treewidth budget (default 8); EFGs
//                           wider than this bail out to MC-SSAPRE
//     --train=<a,b,...>     arguments for the profile-collection run
//     --run=<a,b,...>       interpret the result and report costs
//     --placement=<latest|earliest>   min-cut tie-breaking
//     --cleanup             run constant folding / copy prop / DCE after
//     --gvn                 run dominator-scoped value numbering after
//     --out-of-ssa          lower phis to copies (backend-ready output)
//     --profile-out=<path>  persist the training profile
//     --profile-in=<path>   reuse a persisted profile (skip training)
//     --dot-cfg=<path>      append the prepared CFG as Graphviz
//     --dot-frg=<path>      append the annotated FRGs/EFGs as Graphviz
//     --stats               dump per-expression PRE statistics
//     --no-emit             do not print the optimized IR
//     --function=<name>     restrict to one function
//     --jobs=N              parallel PRE pipeline (N workers; output is
//                           bit-identical to --jobs=1); 0 = all cores
//     --metrics-out=<path>  write per-step pipeline timing as JSON
//     --budget-ms=N         per-function compile deadline (degrades on
//                           exhaustion instead of failing)
//     --max-augmentations=N per-function max-flow augmentation cap
//     --max-graph-nodes=N   per-function FRG/EFG node cap
//     --inject-faults=SPEC  deterministic fault injection, SPEC =
//                           site:rate[:seed][,site:rate...] or all:rate
//     --report-outcomes     always report the ladder outcome per function
//                           (degradations are reported regardless, on
//                           stderr, so stdout stays bit-identical)
//     --cache-dir=PATH      on-disk compilation cache directory (implies
//                           --cache=on); see docs/CACHING.md
//     --cache=on|off|verify content-addressed compilation cache; verify
//                           recompiles every hit and asserts the cached
//                           entry is bit-identical (exit 1 on mismatch)
//     --cache-durable=on|off fsync cache entries + directory before each
//                           publish rename (default off; docs/CACHING.md)
//     --cache-scrub         one-shot scrub of --cache-dir: validate every
//                           entry's checksum trailer, quarantine corrupt
//                           entries, report, exit (no input file needed)
//     --connect=PATH        client mode: send the compile to a running
//                           specpre-serve daemon at this socket instead
//                           of compiling locally; stdout is bit-identical
//                           to a local run (docs/SERVING.md). Flags that
//                           only make sense locally (--dot-*, --run,
//                           --stats, --profile-out, --metrics-out,
//                           --inject-faults, --cache*, --jobs) are
//                           rejected in this mode.
//     --timeout-ms=N        client mode: per-frame I/O budget against the
//                           daemon (default 60000)
//     --retries=N           client mode: reconnect and resend after a
//                           transport failure or a 'B' (busy) frame, up
//                           to N times with exponential backoff
//                           (default 0); request-level 'E' errors are
//                           terminal and never retried
//     --retry-seed=N        client mode: seed for the deterministic
//                           backoff jitter (default 0)
//
// Input syntax: see ir/Parser.h (examples/programs/*.spre).
//
//===----------------------------------------------------------------------===//

#include "analysis/Cfg.h"
#include "analysis/DomTree.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "opt/Cleanup.h"
#include "opt/ValueNumbering.h"
#include "pre/CompileService.h"
#include "pre/DotExport.h"
#include "pre/ParallelDriver.h"
#include "pre/PreDriver.h"
#include "ssa/SsaConstruction.h"
#include "ssa/SsaDestruction.h"
#include "support/CompileCache.h"
#include "support/CrashContext.h"
#include "support/FaultInjector.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace specpre;

namespace {

struct ToolOptions {
  PreStrategy Strategy = PreStrategy::McSsaPre;
  std::optional<std::vector<int64_t>> TrainArgs;
  std::optional<std::vector<int64_t>> RunArgs;
  CutPlacement Placement = CutPlacement::Latest;
  MaxFlowAlgorithm Algo = MaxFlowAlgorithm::Dinic;
  CutObjective Objective = CutObjective::speed();
  bool Cleanup = false;
  bool Gvn = false;
  bool OutOfSsa = false;
  bool Stats = false;
  bool Emit = true;
  std::string DotCfgPath;    ///< write the prepared CFG as DOT
  std::string DotFrgPath;    ///< write annotated FRGs as DOT
  std::string ProfileOutPath; ///< persist the training profile
  std::string ProfileInPath;  ///< reuse a persisted profile, skip training
  std::string MetricsOutPath; ///< write pipeline step timings as JSON
  std::string OnlyFunction;
  std::string InputPath;
  unsigned Jobs = 1; ///< PRE pipeline workers; 0 = hardware concurrency
  CompileBudget Budget;     ///< per-function resource limits
  unsigned LospreMaxWidth = 8; ///< leg D treewidth budget
  std::string InjectFaults; ///< fault-injection spec ("" = disabled)
  bool ReportOutcomes = false; ///< report ladder outcome per function
  std::string CacheDir;        ///< on-disk cache directory ("" = memory-only)
  std::optional<CacheMode> Cache; ///< unset = on iff --cache-dir given
  bool CacheDurable = false;   ///< fsync-before-rename disk publishes
  bool CacheScrub = false;     ///< one-shot disk-tier scrub, then exit
  std::string ConnectPath; ///< serve-daemon socket ("" = compile locally)
  bool JobsGiven = false;  ///< --jobs was on the command line
  int TimeoutMs = 60000;   ///< client mode: per-frame I/O budget
  unsigned Retries = 0;    ///< client mode: attempts beyond the first
  uint64_t RetrySeed = 0;  ///< client mode: backoff jitter seed
  bool RetryFlagsGiven = false; ///< any of --timeout-ms/--retries/--retry-seed
};

std::optional<std::vector<int64_t>> parseIntList(const std::string &S) {
  std::vector<int64_t> Out;
  std::stringstream In(S);
  std::string Item;
  while (std::getline(In, Item, ',')) {
    try {
      Out.push_back(std::stoll(Item));
    } catch (...) {
      return std::nullopt;
    }
  }
  return Out;
}

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--strategy=S] [--train=a,b,...] [--run=a,b,...]\n"
               "          [--placement=latest|earliest] "
               "[--mincut-algo=dinic|ek|pr]\n"
               "          [--lospre-max-width=N]\n"
               "          [--cleanup] [--stats]\n"
               "          [--objective=speed|size|speed-then-size] [--no-emit]\n"
               "          [--jobs=N] [--metrics-out=PATH]\n"
               "          [--budget-ms=N] [--max-augmentations=N] "
               "[--max-graph-nodes=N]\n"
               "          [--inject-faults=SPEC] [--report-outcomes]\n"
               "          [--cache-dir=PATH] [--cache=on|off|verify]\n"
               "          [--cache-durable=on|off] [--cache-scrub]\n"
               "          [--connect=SOCKET] [--timeout-ms=N] [--retries=N]\n"
               "          [--retry-seed=N]\n"
               "          [--dot-cfg=PATH] [--dot-frg=PATH] [--function=NAME] <file>\n",
               Argv0);
  return 2;
}

bool parseArgs(int Argc, char **Argv, ToolOptions &Opts) {
  for (int I = 1; I != Argc; ++I) {
    std::string A = Argv[I];
    auto Value = [&](const char *Prefix) -> std::optional<std::string> {
      size_t N = std::strlen(Prefix);
      if (A.rfind(Prefix, 0) == 0)
        return A.substr(N);
      return std::nullopt;
    };
    if (auto V = Value("--strategy=")) {
      if (*V == "ssapre")
        Opts.Strategy = PreStrategy::SsaPre;
      else if (*V == "ssapresp")
        Opts.Strategy = PreStrategy::SsaPreSpec;
      else if (*V == "mcssapre")
        Opts.Strategy = PreStrategy::McSsaPre;
      else if (*V == "mcpre")
        Opts.Strategy = PreStrategy::McPre;
      else if (*V == "lospre")
        Opts.Strategy = PreStrategy::Lospre;
      else if (*V == "lcm")
        Opts.Strategy = PreStrategy::Lcm;
      else if (*V == "none")
        Opts.Strategy = PreStrategy::None;
      else {
        std::fprintf(stderr, "error: unknown strategy '%s'\n", V->c_str());
        return false;
      }
    } else if (auto V = Value("--train=")) {
      Opts.TrainArgs = parseIntList(*V);
      if (!Opts.TrainArgs) {
        std::fprintf(stderr, "error: bad --train list\n");
        return false;
      }
    } else if (auto V = Value("--run=")) {
      Opts.RunArgs = parseIntList(*V);
      if (!Opts.RunArgs) {
        std::fprintf(stderr, "error: bad --run list\n");
        return false;
      }
    } else if (auto V = Value("--placement=")) {
      if (*V == "latest")
        Opts.Placement = CutPlacement::Latest;
      else if (*V == "earliest")
        Opts.Placement = CutPlacement::Earliest;
      else {
        std::fprintf(stderr, "error: bad --placement\n");
        return false;
      }
    } else if (auto V = Value("--mincut-algo=")) {
      if (!parseMaxFlowAlgorithm(V->c_str(), Opts.Algo)) {
        std::fprintf(stderr,
                     "error: bad --mincut-algo (want dinic, "
                     "edmonds-karp/ek or push-relabel/pr)\n");
        return false;
      }
    } else if (auto V = Value("--objective=")) {
      if (*V == "speed")
        Opts.Objective = CutObjective::speed();
      else if (*V == "size")
        Opts.Objective = CutObjective::size();
      else if (*V == "speed-then-size")
        Opts.Objective = CutObjective::speedThenSize();
      else {
        std::fprintf(stderr, "error: bad --objective\n");
        return false;
      }
    } else if (auto V = Value("--dot-cfg=")) {
      Opts.DotCfgPath = *V;
    } else if (auto V = Value("--dot-frg=")) {
      Opts.DotFrgPath = *V;
    } else if (auto V = Value("--profile-out=")) {
      Opts.ProfileOutPath = *V;
    } else if (auto V = Value("--profile-in=")) {
      Opts.ProfileInPath = *V;
    } else if (auto V = Value("--metrics-out=")) {
      Opts.MetricsOutPath = *V;
    } else if (auto V = Value("--connect=")) {
      Opts.ConnectPath = *V;
    } else if (auto V = Value("--timeout-ms=")) {
      Opts.RetryFlagsGiven = true;
      try {
        Opts.TimeoutMs = std::stoi(*V);
      } catch (...) {
        std::fprintf(stderr, "error: bad --timeout-ms value '%s'\n",
                     V->c_str());
        return false;
      }
    } else if (auto V = Value("--retries=")) {
      Opts.RetryFlagsGiven = true;
      try {
        Opts.Retries = static_cast<unsigned>(std::stoul(*V));
      } catch (...) {
        std::fprintf(stderr, "error: bad --retries value '%s'\n",
                     V->c_str());
        return false;
      }
    } else if (auto V = Value("--retry-seed=")) {
      Opts.RetryFlagsGiven = true;
      try {
        Opts.RetrySeed = std::stoull(*V);
      } catch (...) {
        std::fprintf(stderr, "error: bad --retry-seed value '%s'\n",
                     V->c_str());
        return false;
      }
    } else if (auto V = Value("--jobs=")) {
      Opts.JobsGiven = true;
      try {
        Opts.Jobs = static_cast<unsigned>(std::stoul(*V));
      } catch (...) {
        std::fprintf(stderr, "error: bad --jobs value '%s'\n", V->c_str());
        return false;
      }
    } else if (auto V = Value("--budget-ms=")) {
      try {
        Opts.Budget.DeadlineMillis = std::stoull(*V);
      } catch (...) {
        std::fprintf(stderr, "error: bad --budget-ms value '%s'\n",
                     V->c_str());
        return false;
      }
    } else if (auto V = Value("--max-augmentations=")) {
      try {
        Opts.Budget.MaxFlowAugmentations = std::stoull(*V);
      } catch (...) {
        std::fprintf(stderr, "error: bad --max-augmentations value '%s'\n",
                     V->c_str());
        return false;
      }
    } else if (auto V = Value("--max-graph-nodes=")) {
      try {
        Opts.Budget.MaxGraphNodes = std::stoull(*V);
      } catch (...) {
        std::fprintf(stderr, "error: bad --max-graph-nodes value '%s'\n",
                     V->c_str());
        return false;
      }
    } else if (auto V = Value("--lospre-max-width=")) {
      try {
        Opts.LospreMaxWidth = static_cast<unsigned>(std::stoul(*V));
      } catch (...) {
        std::fprintf(stderr, "error: bad --lospre-max-width value '%s'\n",
                     V->c_str());
        return false;
      }
    } else if (auto V = Value("--inject-faults=")) {
      Opts.InjectFaults = *V;
    } else if (auto V = Value("--cache-dir=")) {
      Opts.CacheDir = *V;
    } else if (auto V = Value("--cache=")) {
      if (*V == "on")
        Opts.Cache = CacheMode::On;
      else if (*V == "off")
        Opts.Cache = CacheMode::Off;
      else if (*V == "verify")
        Opts.Cache = CacheMode::Verify;
      else {
        std::fprintf(stderr, "error: bad --cache mode '%s'\n", V->c_str());
        return false;
      }
    } else if (auto V = Value("--cache-durable=")) {
      if (*V == "on")
        Opts.CacheDurable = true;
      else if (*V == "off")
        Opts.CacheDurable = false;
      else {
        std::fprintf(stderr, "error: bad --cache-durable value '%s'\n",
                     V->c_str());
        return false;
      }
    } else if (A == "--cache-scrub") {
      Opts.CacheScrub = true;
    } else if (A == "--report-outcomes") {
      Opts.ReportOutcomes = true;
    } else if (A == "--cleanup") {
      Opts.Cleanup = true;
    } else if (A == "--gvn") {
      Opts.Gvn = true;
    } else if (A == "--out-of-ssa") {
      Opts.OutOfSsa = true;
    } else if (A == "--stats") {
      Opts.Stats = true;
    } else if (A == "--no-emit") {
      Opts.Emit = false;
    } else if (auto V = Value("--function=")) {
      Opts.OnlyFunction = *V;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", A.c_str());
      return false;
    } else if (Opts.InputPath.empty()) {
      Opts.InputPath = A;
    } else {
      std::fprintf(stderr, "error: multiple input files\n");
      return false;
    }
  }
  // --cache-scrub is a standalone maintenance mode: it needs a cache
  // directory, not an input program.
  if (Opts.CacheScrub)
    return true;
  return !Opts.InputPath.empty();
}

void reportRun(const char *Label, const ExecResult &R) {
  std::printf("%s: ret=%lld computations=%llu cycles=%llu%s%s\n", Label,
              static_cast<long long>(R.ReturnValue),
              static_cast<unsigned long long>(R.DynamicComputations),
              static_cast<unsigned long long>(R.Cycles),
              R.Trapped ? " [TRAPPED]" : "",
              R.TimedOut ? " [TIMED OUT]" : "");
}

int processFunction(Function &F, const ToolOptions &Opts,
                    ParallelPreDriver &Driver, PipelineMetrics *Metrics,
                    CompileCache *Cache) {
  prepareFunction(F);

  bool NeedsProfile = Opts.Strategy == PreStrategy::McSsaPre ||
                      Opts.Strategy == PreStrategy::McPre ||
                      Opts.Strategy == PreStrategy::Lospre;
  Profile Prof;
  if (NeedsProfile && !Opts.ProfileInPath.empty()) {
    std::ifstream In(Opts.ProfileInPath);
    if (!In) {
      std::fprintf(stderr, "error: cannot open profile '%s'\n",
                   Opts.ProfileInPath.c_str());
      return 1;
    }
    std::stringstream Buf;
    Buf << In.rdbuf();
    std::string Error;
    if (!parseProfile(Buf.str(), Prof, Error)) {
      std::fprintf(stderr, "error: %s: %s\n", Opts.ProfileInPath.c_str(),
                   Error.c_str());
      return 1;
    }
    Prof.BlockFreq.resize(F.numBlocks(), 0);
  } else if (NeedsProfile) {
    if (!Opts.TrainArgs) {
      std::fprintf(stderr,
                   "error: --strategy=%s requires --train=... arguments or "
                   "--profile-in=...\n",
                   strategyName(Opts.Strategy));
      return 1;
    }
    if (Opts.TrainArgs->size() != F.Params.size()) {
      std::fprintf(stderr,
                   "error: function '%s' takes %zu arguments, --train has "
                   "%zu\n",
                   F.Name.c_str(), F.Params.size(), Opts.TrainArgs->size());
      return 1;
    }
    ExecOptions EO;
    EO.CollectProfile = &Prof;
    ExecResult Train = interpret(F, *Opts.TrainArgs, EO);
    reportRun("train", Train);
    if (Train.Trapped || Train.TimedOut) {
      std::fprintf(stderr, "error: training run failed\n");
      return 1;
    }
  }
  if (NeedsProfile && !Opts.ProfileOutPath.empty()) {
    std::ofstream Out(Opts.ProfileOutPath);
    Out << serializeProfile(Prof);
  }

  if (!Opts.DotCfgPath.empty()) {
    std::ofstream Out(Opts.DotCfgPath, std::ios::app);
    Out << cfgToDot(F, NeedsProfile ? &Prof : nullptr);
  }
  if (!Opts.DotFrgPath.empty()) {
    // Annotated FRGs: run MC-SSAPRE's placement per candidate on a
    // throwaway SSA copy so the DOT shows classes, reduction and the cut.
    Function Copy = F;
    constructSsa(Copy);
    Cfg C(Copy);
    DomTree DT = DomTree::buildDominators(C);
    std::ofstream Out(Opts.DotFrgPath, std::ios::app);
    Profile NodeProf = Prof.withoutEdgeFreqs();
    for (const ExprKey &E : collectCandidateExprs(Copy)) {
      Frg G(Copy, C, DT, E);
      if (NeedsProfile && !E.canFault())
        computeSpeculativePlacement(G, NodeProf, Opts.Placement, Opts.Algo,
                                    Opts.Objective);
      Out << frgToDot(G, NeedsProfile ? &NodeProf : nullptr);
    }
  }

  Profile NodeOnly = Prof.withoutEdgeFreqs();
  PreOptions PO;
  PO.Strategy = Opts.Strategy;
  PO.Prof = Opts.Strategy == PreStrategy::McPre ? &Prof : &NodeOnly;
  PO.Placement = Opts.Placement;
  PO.Algo = Opts.Algo;
  PO.Objective = Opts.Objective;
  PO.Budget = Opts.Budget;
  PO.LospreMaxWidth = Opts.LospreMaxWidth;
  PO.Cache = Cache;
  PreStats Stats;
  PO.Stats = &Stats;

  CompileOutcomeRecord Outcome;
  Function Optimized = Driver.compileFunctionWithFallback(F, PO, Metrics,
                                                          &Outcome);
  // Degradations go to stderr so stdout stays bit-identical to a clean
  // run; --report-outcomes forces a line even for clean compiles.
  if (Outcome.degraded() || Opts.ReportOutcomes) {
    std::fprintf(stderr, "outcome: %s requested=%s used=%s retries=%u",
                 F.Name.c_str(), Outcome.Requested.c_str(),
                 Outcome.Used.c_str(), Outcome.Retries);
    if (!Outcome.Cause.empty())
      std::fprintf(stderr, " cause=%s (%s)", Outcome.Cause.c_str(),
                   Outcome.Message.c_str());
    std::fprintf(stderr, "\n");
  }
  if (Opts.Gvn && Optimized.IsSSA)
    runValueNumbering(Optimized);
  if (Opts.Cleanup && Optimized.IsSSA)
    runCleanupPipeline(Optimized);
  if (Opts.OutOfSsa && Optimized.IsSSA)
    destructSsa(Optimized);

  if (Opts.Emit)
    std::printf("%s", printFunction(Optimized).c_str());

  if (Opts.Stats) {
    std::printf("; per-expression statistics (%s):\n",
                strategyName(Opts.Strategy));
    for (const ExprStatsRecord &R : Stats.records())
      std::printf(";   %-20s frg=%up+%ur efg=%s%u ins=%u reload=%u save=%u\n",
                  R.Expr.c_str(), R.FrgPhis, R.FrgReals,
                  R.EfgEmpty ? "-" : "", R.EfgEmpty ? 0 : R.EfgNodes,
                  R.NumInsertions, R.NumReloads, R.NumSaves);
  }

  if (Opts.RunArgs) {
    if (Opts.RunArgs->size() != F.Params.size()) {
      std::fprintf(stderr, "error: --run argument count mismatch\n");
      return 1;
    }
    ExecResult Before = interpret(F, *Opts.RunArgs);
    ExecResult After = interpret(Optimized, *Opts.RunArgs);
    reportRun("before", Before);
    reportRun("after ", After);
    if (!Before.sameObservableBehavior(After)) {
      std::fprintf(stderr, "error: behavior changed!\n");
      return 1;
    }
  }
  return 0;
}

/// Client mode: ship the compile to a specpre-serve daemon and replay
/// its streams, so `specpre-opt --connect=S file` is a drop-in for the
/// local run (stdout bit-identical; see docs/SERVING.md).
int runClientMode(const ToolOptions &Opts) {
  // Flags whose effects are local side channels (files written here,
  // interpretation of the *input*) cannot be delegated; reject loudly
  // rather than silently compiling something else.
  const char *Unsupported = nullptr;
  if (!Opts.DotCfgPath.empty() || !Opts.DotFrgPath.empty())
    Unsupported = "--dot-cfg/--dot-frg";
  else if (Opts.RunArgs)
    Unsupported = "--run";
  else if (Opts.Stats)
    Unsupported = "--stats";
  else if (!Opts.ProfileOutPath.empty())
    Unsupported = "--profile-out";
  else if (!Opts.MetricsOutPath.empty())
    Unsupported = "--metrics-out";
  else if (!Opts.InjectFaults.empty())
    Unsupported = "--inject-faults";
  else if (!Opts.CacheDir.empty() || Opts.Cache || Opts.CacheDurable ||
           Opts.CacheScrub)
    Unsupported = "--cache-dir/--cache (the daemon owns the cache)";
  else if (Opts.JobsGiven)
    Unsupported = "--jobs (the daemon owns the pool)";
  if (Unsupported) {
    std::fprintf(stderr, "error: %s is not supported with --connect\n",
                 Unsupported);
    return 2;
  }

  std::ifstream In(Opts.InputPath);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n",
                 Opts.InputPath.c_str());
    return 1;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  ServeRequest Req;
  Req.ModuleText = Buffer.str();
  Req.Strategy = Opts.Strategy;
  Req.Placement = Opts.Placement;
  Req.Algo = Opts.Algo;
  Req.Objective = Opts.Objective;
  Req.Budget = Opts.Budget;
  Req.LospreMaxWidth = Opts.LospreMaxWidth;
  Req.TrainArgs = Opts.TrainArgs;
  Req.OnlyFunction = Opts.OnlyFunction;
  Req.Emit = Opts.Emit;
  Req.Cleanup = Opts.Cleanup;
  Req.Gvn = Opts.Gvn;
  Req.OutOfSsa = Opts.OutOfSsa;
  Req.ReportOutcomes = Opts.ReportOutcomes;
  if (!Opts.ProfileInPath.empty()) {
    std::ifstream PIn(Opts.ProfileInPath);
    if (!PIn) {
      std::fprintf(stderr, "error: cannot open profile '%s'\n",
                   Opts.ProfileInPath.c_str());
      return 1;
    }
    std::stringstream PBuf;
    PBuf << PIn.rdbuf();
    Req.ProfileText = PBuf.str();
  }

  // One attempt over a fresh connection. Distinguishes transport damage
  // (retryable: the daemon never judged the request) from request-level
  // verdicts (terminal: retrying would just replay the same answer —
  // or worse, re-poke a quarantined request). The daemon marks 'E'
  // frames caused by transport damage with a "frame-error: " prefix.
  const std::string Encoded = encodeServeRequest(Req);
  enum class Attempt { Done, Retry, Fatal };
  int ExitCode = 1;
  auto TryOnce = [&](std::string &Why) -> Attempt {
    Expected<Socket> Conn = connectUnix(Opts.ConnectPath, 5000);
    if (!Conn) {
      Why = "cannot connect to '" + Opts.ConnectPath +
            "': " + Conn.status().message();
      return Attempt::Retry;
    }
    if (Status St = writeFrame(*Conn, 'C', Encoded, Opts.TimeoutMs); !St) {
      Why = "send failed: " + St.message();
      return Attempt::Retry;
    }
    Frame F;
    bool PeerClosed = false;
    if (Status St = readFrame(*Conn, F, PeerClosed, Opts.TimeoutMs); !St) {
      Why = "receive failed: " + St.message();
      return Attempt::Retry;
    }
    if (PeerClosed) {
      Why = "daemon closed the connection";
      return Attempt::Retry;
    }
    if (F.Type == 'B') {
      Why = "daemon busy: " + F.Payload;
      return Attempt::Retry;
    }
    if (F.Type == 'E') {
      if (F.Payload.rfind("frame-error: ", 0) == 0) {
        Why = "daemon: " + F.Payload;
        return Attempt::Retry; // our frame arrived torn; resend it
      }
      std::fprintf(stderr, "error: daemon: %s\n", F.Payload.c_str());
      return Attempt::Fatal;
    }
    if (F.Type != 'R') {
      Why = std::string("unexpected frame type '") + F.Type + "'";
      return Attempt::Retry;
    }
    ServeResponse Resp;
    std::string Error;
    if (!decodeServeResponse(F.Payload, Resp, Error)) {
      Why = "bad response: " + Error;
      return Attempt::Retry; // response torn in transit; ask again
    }
    if (!Resp.Ok) {
      std::fprintf(stderr, "error: daemon: %s\n", Resp.Error.c_str());
      return Attempt::Fatal;
    }
    std::fwrite(Resp.StdoutText.data(), 1, Resp.StdoutText.size(), stdout);
    std::fwrite(Resp.StderrText.data(), 1, Resp.StderrText.size(), stderr);
    ExitCode = Resp.ExitCode;
    return Attempt::Done;
  };

  // splitmix64: deterministic jitter so two clients retrying the same
  // busy daemon desynchronize without any shared state or wall clock.
  auto Mix = [](uint64_t X) {
    X += 0x9e3779b97f4a7c15ULL;
    X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
    X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
    return X ^ (X >> 31);
  };
  for (unsigned A = 0;; ++A) {
    std::string Why;
    switch (TryOnce(Why)) {
    case Attempt::Done:
      return ExitCode;
    case Attempt::Fatal:
      return 1;
    case Attempt::Retry:
      if (A >= Opts.Retries) {
        std::fprintf(stderr, "error: %s (after %u attempt%s)\n",
                     Why.c_str(), A + 1, A ? "s" : "");
        return 1;
      }
      // Exponential backoff, capped, plus seeded jitter in [0, base/2).
      uint64_t BaseMs = std::min<uint64_t>(25ull << std::min(A, 7u), 2000);
      uint64_t Jitter = Mix(Opts.RetrySeed * 0x100000001b3ULL + A) %
                        (BaseMs / 2 + 1);
      std::fprintf(stderr,
                   "specpre-opt: retrying in %llu ms (attempt %u/%u): %s\n",
                   static_cast<unsigned long long>(BaseMs + Jitter), A + 1,
                   Opts.Retries, Why.c_str());
      std::this_thread::sleep_for(
          std::chrono::milliseconds(BaseMs + Jitter));
      break;
    }
  }
}

} // namespace

int main(int Argc, char **Argv) {
  installCrashSignalHandlers();
  ToolOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return usage(Argv[0]);

  if (!Opts.ConnectPath.empty())
    return runClientMode(Opts);

  if (Opts.RetryFlagsGiven) {
    std::fprintf(stderr, "error: --timeout-ms/--retries/--retry-seed "
                         "require --connect\n");
    return 2;
  }

  if (!Opts.InjectFaults.empty()) {
    Status S = configureFaultInjection(Opts.InjectFaults);
    if (!S.isOk()) {
      std::fprintf(stderr, "error: --inject-faults: %s\n",
                   S.message().c_str());
      return 2;
    }
  }

  if (Opts.CacheScrub) {
    if (Opts.CacheDir.empty()) {
      std::fprintf(stderr, "error: --cache-scrub requires --cache-dir\n");
      return 2;
    }
    CompileCache::Config CC;
    CC.DiskDir = Opts.CacheDir;
    CompileCache Cache(CC);
    CompileCache::ScrubReport R = Cache.scrubDiskTier();
    std::fprintf(stderr,
                 "cache-scrub: scanned=%llu quarantined=%llu "
                 "read_failures=%llu bytes=%llu\n",
                 static_cast<unsigned long long>(R.Scanned),
                 static_cast<unsigned long long>(R.Quarantined),
                 static_cast<unsigned long long>(R.ReadFailures),
                 static_cast<unsigned long long>(R.BytesRead));
    return 0;
  }

  std::ifstream In(Opts.InputPath);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n",
                 Opts.InputPath.c_str());
    return 1;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  std::string Error;
  std::optional<Module> M = parseModule(Buffer.str(), Error);
  if (!M) {
    std::fprintf(stderr, "error: %s: %s\n", Opts.InputPath.c_str(),
                 Error.c_str());
    return 1;
  }

  ParallelConfig PC;
  PC.Jobs = Opts.Jobs;
  ParallelPreDriver Driver(PC);
  PipelineMetrics Metrics;
  bool WantMetrics = !Opts.MetricsOutPath.empty();

  // --cache-dir alone implies --cache=on; --cache=off wins regardless.
  CacheMode Mode = Opts.Cache.value_or(Opts.CacheDir.empty()
                                           ? CacheMode::Off
                                           : CacheMode::On);
  std::unique_ptr<CompileCache> Cache;
  if (Mode != CacheMode::Off) {
    CompileCache::Config CC;
    CC.DiskDir = Opts.CacheDir;
    CC.Durable = Opts.CacheDurable;
    CC.Mode = Mode;
    Cache = std::make_unique<CompileCache>(CC);
  }

  bool FoundAny = false;
  for (Function &F : M->Functions) {
    if (!Opts.OnlyFunction.empty() && F.Name != Opts.OnlyFunction)
      continue;
    FoundAny = true;
    if (int Rc = processFunction(F, Opts, Driver,
                                 WantMetrics ? &Metrics : nullptr,
                                 Cache.get()))
      return Rc;
  }
  if (!FoundAny) {
    std::fprintf(stderr, "error: no function matched\n");
    return 1;
  }

  CacheCounters CacheStats;
  if (Cache) {
    CacheStats = Cache->counters();
    Metrics.cache() = CacheStats;
    // Summary on stderr so stdout stays bit-identical with and without
    // the cache.
    std::fprintf(
        stderr,
        "cache: hits=%llu misses=%llu stores=%llu evictions=%llu "
        "disk_hits=%llu disk_writes=%llu verify_mismatches=%llu "
        "corrupt_dropped=%llu disk_io_errors=%llu breaker_opens=%llu\n",
        static_cast<unsigned long long>(CacheStats.Hits),
        static_cast<unsigned long long>(CacheStats.Misses),
        static_cast<unsigned long long>(CacheStats.Stores),
        static_cast<unsigned long long>(CacheStats.Evictions),
        static_cast<unsigned long long>(CacheStats.DiskHits),
        static_cast<unsigned long long>(CacheStats.DiskWrites),
        static_cast<unsigned long long>(CacheStats.VerifyMismatches),
        static_cast<unsigned long long>(CacheStats.CorruptDropped),
        static_cast<unsigned long long>(CacheStats.DiskIoErrors),
        static_cast<unsigned long long>(CacheStats.BreakerOpens));
  }

  if (WantMetrics) {
    std::ofstream Out(Opts.MetricsOutPath);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   Opts.MetricsOutPath.c_str());
      return 1;
    }
    char Header[64];
    std::snprintf(Header, sizeof(Header), "{\"jobs\": %u,\n\"steps\": ",
                  Driver.jobs());
    Out << Header << Metrics.toJson() << ",\n\"robustness\": "
        << Metrics.robustnessToJson() << ",\n\"arena\": "
        << Metrics.arenaToJson() << ",\n\"lospre\": "
        << Metrics.lospreToJson() << ",\n\"cache\": "
        << Metrics.cacheToJson() << "}\n";
  }

  if (CacheStats.VerifyMismatches) {
    std::fprintf(stderr,
                 "error: --cache=verify found %llu mismatching cache "
                 "entr%s\n",
                 static_cast<unsigned long long>(CacheStats.VerifyMismatches),
                 CacheStats.VerifyMismatches == 1 ? "y" : "ies");
    return 1;
  }
  return 0;
}
