//===- tools/specpre-fuzz.cpp - Differential fuzzing driver --------------------===//
//
// Generates random programs (and random small flow networks), runs the
// oracle stack from workload/FuzzOracles.h on each, and on failure
// delta-reduces the case to a minimal reproducer that can be committed
// to tests/corpus/ and replayed by ctest.
//
// Usage:
//   specpre-fuzz --cases=10000 --seed=1          pipeline fuzzing
//   specpre-fuzz --networks=5000 --seed=1        min-cut differential
//   specpre-fuzz --replay=tests/corpus/foo.ir    replay one reproducer
//   specpre-fuzz --corpus-out=DIR                where reduced cases land
//   specpre-fuzz --no-reduce                     report without shrinking
//   specpre-fuzz --inject-faults=SPEC            deterministic fault
//                                                injection (site:rate[:seed])
//
//===----------------------------------------------------------------------===//

#include "support/CrashContext.h"
#include "support/FaultInjector.h"
#include "support/Status.h"
#include "workload/FuzzOracles.h"
#include "workload/Reducer.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

using namespace specpre;

namespace {

struct Options {
  uint64_t Cases = 0;
  uint64_t Networks = 0;
  uint64_t Seed = 1;
  std::string CorpusOut;
  bool Reduce = true;
  std::string InjectFaults;
  std::vector<std::string> ReplayFiles;
};

bool parseUint(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  Out = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    Out = Out * 10 + static_cast<uint64_t>(C - '0');
  }
  return true;
}

bool parseArgs(int Argc, char **Argv, Options &O) {
  for (int I = 1; I != Argc; ++I) {
    std::string A = Argv[I];
    auto Value = [&](const char *Flag) -> std::optional<std::string> {
      std::string Prefix = std::string(Flag) + "=";
      if (A.rfind(Prefix, 0) != 0)
        return std::nullopt;
      return A.substr(Prefix.size());
    };
    if (auto V = Value("--cases")) {
      if (!parseUint(*V, O.Cases))
        return false;
    } else if (auto V = Value("--networks")) {
      if (!parseUint(*V, O.Networks))
        return false;
    } else if (auto V = Value("--seed")) {
      if (!parseUint(*V, O.Seed))
        return false;
    } else if (auto V = Value("--corpus-out")) {
      O.CorpusOut = *V;
    } else if (auto V = Value("--replay")) {
      O.ReplayFiles.push_back(*V);
    } else if (A == "--no-reduce") {
      O.Reduce = false;
    } else if (auto V = Value("--inject-faults")) {
      O.InjectFaults = *V;
    } else {
      std::fprintf(stderr, "specpre-fuzz: unknown argument '%s'\n", A.c_str());
      return false;
    }
  }
  if (O.Cases == 0 && O.Networks == 0 && O.ReplayFiles.empty()) {
    std::fprintf(stderr,
                 "specpre-fuzz: nothing to do (pass --cases, --networks "
                 "or --replay)\n");
    return false;
  }
  return true;
}

/// Reduces a failing pipeline case and writes (or prints) the reproducer.
void emitReproducer(const Options &O, uint64_t CaseIdx,
                    const Function &Failing,
                    const std::vector<int64_t> &TrainArgs,
                    const std::vector<std::vector<int64_t>> &VariantArgs,
                    const OracleFailure &Failure) {
  Function Reduced = Failing;
  if (O.Reduce) {
    ReducePredicate SameOracle = [&](const Function &Cand) {
      std::optional<OracleFailure> F =
          checkPipelineOracles(Cand, TrainArgs, VariantArgs);
      return F && F->Oracle == Failure.Oracle;
    };
    Reduced = reduceFunction(Failing, SameOracle);
  }
  std::string Text = formatPipelineReproducer(Reduced, TrainArgs, Failure);
  if (O.CorpusOut.empty()) {
    std::fprintf(stderr, "---- reproducer (case %llu) ----\n%s",
                 static_cast<unsigned long long>(CaseIdx), Text.c_str());
    return;
  }
  std::string Path = O.CorpusOut + "/fuzz-seed" + std::to_string(O.Seed) +
                     "-case" + std::to_string(CaseIdx) + ".ir";
  std::ofstream Out(Path);
  Out << Text;
  std::fprintf(stderr, "wrote reproducer %s\n", Path.c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  installCrashSignalHandlers();
  Options O;
  if (!parseArgs(Argc, Argv, O))
    return 2;

  if (!O.InjectFaults.empty()) {
    Status S = configureFaultInjection(O.InjectFaults);
    if (!S.isOk()) {
      std::fprintf(stderr, "specpre-fuzz: --inject-faults: %s\n",
                   S.message().c_str());
      return 2;
    }
  }

  unsigned Failures = 0;

  // Exit cleanly even if an oracle path that bypasses the degradation
  // ladder lets a recoverable error escape (stored-profile and EFG replay
  // modes compile without fallback).
  auto Guarded = [](auto &&Fn) -> std::optional<OracleFailure> {
    try {
      return Fn();
    } catch (const StatusException &E) {
      return OracleFailure{"uncaught-status", E.status().toString()};
    } catch (const std::exception &E) {
      return OracleFailure{"uncaught-exception", E.what()};
    }
  };

  for (const std::string &Path : O.ReplayFiles) {
    if (std::optional<OracleFailure> F =
            Guarded([&] { return replayCorpusFile(Path); })) {
      std::fprintf(stderr, "FAIL %s: oracle '%s': %s\n", Path.c_str(),
                   F->Oracle.c_str(), F->Message.c_str());
      ++Failures;
    } else {
      std::printf("ok %s\n", Path.c_str());
    }
  }

  for (uint64_t C = 0; C != O.Cases; ++C) {
    Function F = fuzzProgram(O.Seed, C);
    std::vector<int64_t> TrainArgs = fuzzTrainArgs(F, O.Seed, C);
    std::vector<std::vector<int64_t>> VariantArgs =
        fuzzVariantArgs(F, O.Seed, C);
    std::optional<OracleFailure> Failure = Guarded(
        [&] { return checkPipelineOracles(F, TrainArgs, VariantArgs); });
    if (!Failure)
      continue;
    ++Failures;
    std::fprintf(stderr, "FAIL case %llu (seed %llu): oracle '%s': %s\n",
                 static_cast<unsigned long long>(C),
                 static_cast<unsigned long long>(O.Seed),
                 Failure->Oracle.c_str(), Failure->Message.c_str());
    emitReproducer(O, C, F, TrainArgs, VariantArgs, *Failure);
  }

  for (uint64_t C = 0; C != O.Networks; ++C) {
    NetworkCase Case = fuzzNetworkCase(O.Seed, C);
    std::optional<OracleFailure> F =
        Guarded([&] { return checkNetworkOracles(Case, std::nullopt); });
    if (!F)
      continue;
    ++Failures;
    std::fprintf(stderr, "FAIL network %llu (seed %llu): oracle '%s': %s\n",
                 static_cast<unsigned long long>(C),
                 static_cast<unsigned long long>(O.Seed),
                 F->Oracle.c_str(), F->Message.c_str());
    NetworkCase Reduced = O.Reduce ? reduceNetworkCase(Case, *F) : Case;
    std::string Text = formatNetworkReproducer(Reduced, *F);
    if (O.CorpusOut.empty()) {
      std::fprintf(stderr, "---- reproducer (network %llu) ----\n%s",
                   static_cast<unsigned long long>(C), Text.c_str());
    } else {
      std::string Path = O.CorpusOut + "/fuzz-seed" + std::to_string(O.Seed) +
                         "-net" + std::to_string(C) + ".ir";
      std::ofstream Out(Path);
      Out << Text;
      std::fprintf(stderr, "wrote reproducer %s\n", Path.c_str());
    }
  }

  uint64_t Total = O.Cases + O.Networks + O.ReplayFiles.size();
  std::printf("specpre-fuzz: %llu cases, %u failure%s\n",
              static_cast<unsigned long long>(Total), Failures,
              Failures == 1 ? "" : "s");
  return Failures ? 1 : 0;
}
